// Serving throughput of the parallel runtime, in three sections:
//
// 1. Shared-Engine serving (the historical bench): one Engine under a
//    ServerPool, many MobileRobot localization sessions with
//    fingerprint churn. Reports sessions/s and frame latency per
//    thread count and asserts every session's final values are
//    byte-identical to a sequential (no pool) run.
//
// 2. Affinity serving: the same missions through an EngineGroup +
//    AdmissionController — sessions routed to the replica owning
//    their fingerprint, opened and stepped inside pinned tasks.
//    Asserts the replica-served digests equal the sequential
//    reference bit for bit and reports the replica-local hit rate.
//
// 3. Paced (SLO) serving: the scaling-efficiency section. Sessions
//    model a sensor-rate client — one frame per kPacedPeriodUs, the
//    frame's compute a fraction of the period — routed round-robin
//    over EDF-ordered pinned lanes with per-session deadlines. On
//    this workload throughput must scale with workers (the compute
//    fits the period's budget even on one core), so the bench
//    computes speedup_4t and the 8-thread p99 inflation, and
//    `--gate-scaling X` turns them into a CI gate: fail when
//    4-thread sessions/s < X * single-thread, or when the 8-thread
//    step p99 exceeds kP99RatioLimit * the 1-thread p99.
//
// Emits BENCH_throughput.json (all three sections) for CI trending.
//
// Per-unit utilization is reported once, at the top level, computed
// from the sequential reference run: the simulator's cycle counts are
// fully deterministic and every run serves the identical session set,
// so the per-thread-count maps were always bit-identical by
// construction — repeating them per run only suggested they could
// differ. The registry is still reset at the start of every section
// (serve/serveAffinity/servePaced) so the histogram and counter
// numbers describe exactly one run.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "apps/benchmark_apps.hpp"
#include "bench_common.hpp"
#include "matrix/simd.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine.hpp"
#include "runtime/engine_group.hpp"
#include "runtime/metrics.hpp"
#include "runtime/server_pool.hpp"

using namespace orianna;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kDistinctGraphs = 6; //!< Cache churn: distinct seeds.
constexpr std::size_t kSessions = 24;   //!< Sessions per serving run.
constexpr std::size_t kFrames = 4;      //!< Gauss-Newton steps each.

/** Paced section: sensor period and frames per session. */
constexpr std::uint64_t kPacedPeriodUs = 5000;
constexpr std::size_t kPacedFrames = 6;

/** 8-thread p99 must stay within this factor of the 1-thread p99. */
constexpr double kP99RatioLimit = 5.0;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the raw bit patterns of every variable, in key order. */
std::uint64_t
valuesDigest(const fg::Values &values)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (fg::Key key : values.keys()) {
        if (values.isPose(key)) {
            const lie::Pose &pose = values.pose(key);
            for (double d : pose.phi().data())
                mix(d);
            for (double d : pose.t().data())
                mix(d);
        } else {
            for (double d : values.vector(key).data())
                mix(d);
        }
    }
    return h;
}

/** One mission template: the localization graph of a distinct seed. */
struct Mission
{
    fg::FactorGraph graph;
    fg::Values initial;
};

struct RunOutcome
{
    std::vector<std::uint64_t> digests;  //!< Final values per session.
    std::vector<double> frame_ms;        //!< Every frame's latency.
    double elapsed_s = 0.0;
    runtime::Engine::Stats stats;
    std::uint64_t steals = 0;
    double sim_p50_us = 0.0; //!< Registry frame.simulate_us p50.
    double sim_p99_us = 0.0;
    /** Per-unit utilization (busy share) from the registry. */
    std::vector<std::pair<std::string, double>> utilization;
};

/** Registry-derived per-unit utilization over the finished run. */
std::vector<std::pair<std::string, double>>
registryUtilization()
{
    auto &metrics = runtime::MetricsRegistry::global();
    std::vector<std::pair<std::string, double>> util;
    const std::uint64_t cycles = metrics.counter("hw.cycles").value();
    if (cycles == 0)
        return util;
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
        const std::string unit =
            hw::unitName(static_cast<hw::UnitKind>(k));
        const std::uint64_t busy =
            metrics.counter("hw.busy_cycles." + unit).value();
        const std::int64_t instances =
            metrics.gauge("hw.units." + unit).value();
        if (instances <= 0)
            continue;
        util.emplace_back(unit,
                          static_cast<double>(busy) /
                              (static_cast<double>(cycles) *
                               static_cast<double>(instances)));
    }
    return util;
}

void
serveOne(runtime::Engine &engine, const Mission &mission,
         std::uint64_t &digest, double *frame_ms)
{
    runtime::Session session =
        engine.session(mission.graph, mission.initial);
    for (std::size_t f = 0; f < kFrames; ++f) {
        const auto start = Clock::now();
        session.step();
        frame_ms[f] = secondsSince(start) * 1e3;
    }
    digest = valuesDigest(session.values());
}

RunOutcome
serve(const std::vector<Mission> &missions, runtime::ServerPool *pool)
{
    // Fresh registry window per run so the utilization and histogram
    // numbers describe exactly this serving run.
    auto &metrics = runtime::MetricsRegistry::global();
    metrics.reset();

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    RunOutcome out;
    out.digests.assign(kSessions, 0);
    out.frame_ms.assign(kSessions * kFrames, 0.0);

    const auto start = Clock::now();
    if (pool != nullptr) {
        pool->parallelFor(kSessions, [&](std::size_t i) {
            serveOne(engine, missions[i % missions.size()],
                     out.digests[i], &out.frame_ms[i * kFrames]);
        });
    } else {
        for (std::size_t i = 0; i < kSessions; ++i)
            serveOne(engine, missions[i % missions.size()],
                     out.digests[i], &out.frame_ms[i * kFrames]);
    }
    out.elapsed_s = secondsSince(start);
    out.stats = engine.stats();
    out.steals = metrics.counter("pool.steals").value();
    out.sim_p50_us =
        metrics.histogram("frame.simulate_us").percentile(0.50);
    out.sim_p99_us =
        metrics.histogram("frame.simulate_us").percentile(0.99);
    out.utilization = registryUtilization();
    return out;
}

/** Section 2 result: affinity-routed EngineGroup serving. */
struct AffinityOutcome
{
    std::vector<std::uint64_t> digests;
    double elapsed_s = 0.0;
    runtime::EngineGroup::Stats stats;
    std::uint64_t rejected = 0;
};

AffinityOutcome
serveAffinity(const std::vector<Mission> &missions, unsigned threads)
{
    runtime::MetricsRegistry::global().reset();
    runtime::ServerPool pool(threads);
    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               threads);
    runtime::AdmissionController admission(
        pool, {/*queueCapacity=*/kSessions});

    // Fingerprint each mission once; its owning replica doubles as
    // the pinned worker (replicas == threads), so every session of a
    // mission opens on the one worker where its program is warm.
    std::vector<unsigned> owner(missions.size());
    for (std::size_t m = 0; m < missions.size(); ++m)
        owner[m] = group.route(missions[m].graph, missions[m].initial);

    AffinityOutcome out;
    out.digests.assign(kSessions, 0);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kSessions; ++i) {
        const std::size_t m = i % missions.size();
        const auto outcome = admission.submit(owner[m], [&, i, m] {
            runtime::Session session = group.session(
                owner[m], missions[m].graph, missions[m].initial);
            session.iterate(kFrames);
            out.digests[i] = valuesDigest(session.values());
        });
        if (!outcome.admitted())
            ++out.rejected;
    }
    admission.drain();
    out.elapsed_s = secondsSince(start);
    out.stats = group.stats();
    return out;
}

/** Section 3 result: one paced serving run. */
struct PacedOutcome
{
    std::vector<std::uint64_t> digests;
    double sessions_per_s = 0.0;
    double step_p50_ms = 0.0; //!< Compute-only step latency.
    double step_p99_ms = 0.0;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/**
 * Paced serving: every session steps once per kPacedPeriodUs (a
 * sensor-rate client), so a worker's capacity is sessions-per-period,
 * not raw compute. Sessions are routed round-robin over EDF pinned
 * lanes with a deadline one period out per session — the SLO mode.
 */
PacedOutcome
servePaced(const std::vector<Mission> &missions, unsigned threads)
{
    runtime::MetricsRegistry::global().reset();
    runtime::PoolOptions pool_options;
    pool_options.threads = threads;
    pool_options.edf = true;
    runtime::ServerPool pool(pool_options);
    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               threads);
    runtime::AdmissionController admission(
        pool, {/*queueCapacity=*/kSessions});

    PacedOutcome out;
    out.digests.assign(kSessions, 0);
    std::vector<double> step_ms(kSessions * kPacedFrames, 0.0);

    const auto start = Clock::now();
    const std::uint64_t now_us = runtime::MetricsRegistry::nowUs();
    for (std::size_t i = 0; i < kSessions; ++i) {
        const std::size_t m = i % missions.size();
        const unsigned worker =
            static_cast<unsigned>(i % threads); // Balanced routing.
        admission.submit(
            worker,
            [&, i, m, worker] {
                runtime::Session session = group.session(
                    worker, missions[m].graph, missions[m].initial);
                auto next = Clock::now();
                for (std::size_t f = 0; f < kPacedFrames; ++f) {
                    next += std::chrono::microseconds(kPacedPeriodUs);
                    const auto t0 = Clock::now();
                    session.step();
                    step_ms[i * kPacedFrames + f] =
                        secondsSince(t0) * 1e3;
                    std::this_thread::sleep_until(next);
                }
                out.digests[i] = valuesDigest(session.values());
            },
            /*deadlineUs=*/now_us + (i + 1) * kPacedPeriodUs);
    }
    admission.drain();
    const double elapsed = secondsSince(start);

    out.sessions_per_s = static_cast<double>(kSessions) / elapsed;
    std::sort(step_ms.begin(), step_ms.end());
    out.step_p50_ms = percentile(step_ms, 0.50);
    out.step_p99_ms = percentile(step_ms, 0.99);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double gate_scaling = 0.0; // 0: report only, no gate.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gate-scaling" && i + 1 < argc) {
            gate_scaling = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--gate-scaling MIN_4T_SPEEDUP]\n",
                         argv[0]);
            return 2;
        }
    }

    // Mission templates, one per distinct seed: same factor-graph
    // *shape*, different measurement constants, hence different
    // program-cache fingerprints.
    std::vector<Mission> missions;
    for (unsigned seed = 1; seed <= kDistinctGraphs; ++seed) {
        apps::BenchmarkApp bench =
            apps::buildApp(apps::AppKind::MobileRobot, seed);
        core::Algorithm &loc = bench.app.algorithm(0);
        missions.push_back({std::move(loc.graph), loc.values});
    }

    std::printf("serving run: %zu mobile_robot localization sessions, "
                "%u distinct graphs, %zu frames each\n",
                kSessions, kDistinctGraphs, kFrames);

    // Sequential reference: the byte-exact ground truth every
    // pool-driven run must reproduce.
    const RunOutcome reference = serve(missions, nullptr);

    std::printf("%8s %12s %10s %10s %10s %8s %12s\n", "threads",
                "sessions/s", "p50 ms", "p99 ms", "hit rate", "steals",
                "sim p99 us");

    std::ofstream json("BENCH_throughput.json");
    json << "{\n  \"sessions\": " << kSessions
         << ",\n  \"distinct_graphs\": " << kDistinctGraphs
         << ",\n  \"frames_per_session\": " << kFrames
         << ",\n  \"simd\": \""
         << mat::kernels::simdTierName(mat::kernels::activeTier())
         << "\"";
    // Thread-invariant by construction (deterministic simulator,
    // identical session set): reported once, from the sequential
    // reference.
    json << ",\n  \"utilization\": {";
    for (std::size_t u = 0; u < reference.utilization.size(); ++u)
        json << (u == 0 ? "" : ", ") << '"'
             << reference.utilization[u].first
             << "\": " << reference.utilization[u].second;
    json << "},\n  \"runs\": [\n";

    bool first = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        runtime::ServerPool pool(threads);
        const RunOutcome run = serve(missions, &pool);

        if (run.digests != reference.digests) {
            std::fprintf(stderr,
                         "FAIL: final values diverge from the "
                         "sequential run at %u threads\n", threads);
            return 1;
        }

        std::vector<double> sorted = run.frame_ms;
        std::sort(sorted.begin(), sorted.end());
        const double sessions_per_s =
            static_cast<double>(kSessions) / run.elapsed_s;
        const double p50 = percentile(sorted, 0.50);
        const double p99 = percentile(sorted, 0.99);
        const double hit_rate =
            static_cast<double>(run.stats.cacheHits) /
            static_cast<double>(run.stats.cacheHits +
                                run.stats.compiles);

        std::printf("%8u %12.1f %10.2f %10.2f %9.0f%% %8llu %12.1f\n",
                    threads, sessions_per_s, p50, p99,
                    100.0 * hit_rate,
                    static_cast<unsigned long long>(run.steals),
                    run.sim_p99_us);

        json << (first ? "" : ",\n")
             << "    {\"threads\": " << threads
             << ", \"sessions_per_s\": " << sessions_per_s
             << ", \"p50_frame_ms\": " << p50
             << ", \"p99_frame_ms\": " << p99
             << ", \"cache_hit_rate\": " << hit_rate
             << ", \"steals\": " << run.steals
             << ", \"sim_p50_us\": " << run.sim_p50_us
             << ", \"sim_p99_us\": " << run.sim_p99_us << "}";
        first = false;
    }
    json << "\n  ],\n";

    // --- Section 2: affinity-routed EngineGroup serving ------------
    std::printf("\naffinity serving (EngineGroup replicas + admission "
                "control):\n%8s %12s %10s %10s %9s\n", "threads",
                "sessions/s", "local", "shared", "rejected");
    json << "  \"affinity_runs\": [\n";
    first = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const AffinityOutcome run = serveAffinity(missions, threads);
        if (run.digests != reference.digests) {
            std::fprintf(stderr,
                         "FAIL: replica-served values diverge from "
                         "the shared-Engine sequential run at %u "
                         "threads\n", threads);
            return 1;
        }
        const double sessions_per_s =
            static_cast<double>(kSessions) / run.elapsed_s;
        std::printf("%8u %12.1f %10zu %10zu %9llu\n", threads,
                    sessions_per_s, run.stats.localHits,
                    run.stats.sharedHits,
                    static_cast<unsigned long long>(run.rejected));
        json << (first ? "" : ",\n")
             << "    {\"threads\": " << threads
             << ", \"sessions_per_s\": " << sessions_per_s
             << ", \"local_hits\": " << run.stats.localHits
             << ", \"shared_hits\": " << run.stats.sharedHits
             << ", \"compiles\": " << run.stats.compiles
             << ", \"rejected\": " << run.rejected << "}";
        first = false;
    }
    json << "\n  ],\n";
    std::printf("replica-served results byte-identical to the "
                "shared-Engine sequential run\n");

    // --- Section 3: paced (SLO) serving — the scaling gate ----------
    std::printf("\npaced serving (one frame per %.1f ms, EDF lanes):\n"
                "%8s %12s %10s %10s\n",
                kPacedPeriodUs / 1000.0, "threads", "sessions/s",
                "p50 ms", "p99 ms");
    // The paced digests must also match: pacing and EDF ordering may
    // reorder *when* frames run, never what they compute. The
    // reference serves the same missions for kPacedFrames frames.
    std::vector<std::uint64_t> paced_reference(kSessions);
    {
        runtime::MetricsRegistry::global().reset();
        runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
        for (std::size_t i = 0; i < kSessions; ++i) {
            const Mission &mission = missions[i % missions.size()];
            runtime::Session session =
                engine.session(mission.graph, mission.initial);
            session.iterate(kPacedFrames);
            paced_reference[i] = valuesDigest(session.values());
        }
    }
    json << "  \"paced\": {\n    \"period_us\": " << kPacedPeriodUs
         << ",\n    \"frames_per_session\": " << kPacedFrames
         << ",\n    \"runs\": [\n";
    std::vector<std::pair<unsigned, PacedOutcome>> paced;
    first = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        paced.emplace_back(threads, servePaced(missions, threads));
        const PacedOutcome &run = paced.back().second;
        if (run.digests != paced_reference) {
            std::fprintf(stderr,
                         "FAIL: paced values diverge from the "
                         "sequential run at %u threads\n", threads);
            return 1;
        }
        std::printf("%8u %12.1f %10.2f %10.2f\n", threads,
                    run.sessions_per_s, run.step_p50_ms,
                    run.step_p99_ms);
        json << (first ? "" : ",\n")
             << "      {\"threads\": " << threads
             << ", \"sessions_per_s\": " << run.sessions_per_s
             << ", \"step_p50_ms\": " << run.step_p50_ms
             << ", \"step_p99_ms\": " << run.step_p99_ms << "}";
        first = false;
    }
    const auto pacedAt = [&paced](unsigned threads) -> const
        PacedOutcome & {
        for (const auto &[t, run] : paced)
            if (t == threads)
                return run;
        return paced.front().second;
    };
    const double speedup_2t =
        pacedAt(2).sessions_per_s / pacedAt(1).sessions_per_s;
    const double speedup_4t =
        pacedAt(4).sessions_per_s / pacedAt(1).sessions_per_s;
    const double speedup_8t =
        pacedAt(8).sessions_per_s / pacedAt(1).sessions_per_s;
    const double p99_ratio_8t =
        pacedAt(1).step_p99_ms > 0.0
            ? pacedAt(8).step_p99_ms / pacedAt(1).step_p99_ms
            : 0.0;
    json << "\n    ],\n    \"speedup_2t\": " << speedup_2t
         << ",\n    \"speedup_4t\": " << speedup_4t
         << ",\n    \"speedup_8t\": " << speedup_8t
         << ",\n    \"p99_ratio_8t\": " << p99_ratio_8t
         << "\n  }\n}\n";

    std::printf("paced scaling: %.2fx @2t, %.2fx @4t, %.2fx @8t; "
                "8t/1t step p99 ratio %.2f\n",
                speedup_2t, speedup_4t, speedup_8t, p99_ratio_8t);
    std::printf("all sections byte-identical to the sequential run\n"
                "wrote BENCH_throughput.json\n");

    if (gate_scaling > 0.0) {
        if (speedup_4t < gate_scaling) {
            std::fprintf(stderr,
                         "GATE FAIL: paced 4-thread speedup %.2fx < "
                         "required %.2fx\n", speedup_4t, gate_scaling);
            return 1;
        }
        if (p99_ratio_8t > kP99RatioLimit) {
            std::fprintf(stderr,
                         "GATE FAIL: paced 8-thread step p99 is "
                         "%.2fx the 1-thread p99 (limit %.1fx)\n",
                         p99_ratio_8t, kP99RatioLimit);
            return 1;
        }
        std::printf("scaling gate passed (>= %.2fx @4t, p99 ratio "
                    "<= %.1fx)\n", gate_scaling, kP99RatioLimit);
    }
    return 0;
}
