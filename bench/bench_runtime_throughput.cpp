// Serving throughput of the parallel runtime: one Engine under a
// ServerPool, many MobileRobot localization sessions with fingerprint
// churn (distinct mission seeds rotate through the session stream, so
// the shared program cache sees both misses and hits while sessions
// run concurrently).
//
// For every thread count the bench reports sessions/s, p50/p99
// single-frame latency, and the program-cache hit rate, and asserts
// that every session's final values are byte-identical to a
// sequential (no pool) run of the same mission — parallelism is
// across sessions, never inside a frame. Emits BENCH_throughput.json
// for CI trending.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "apps/benchmark_apps.hpp"
#include "bench_common.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/server_pool.hpp"

using namespace orianna;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kDistinctGraphs = 6; //!< Cache churn: distinct seeds.
constexpr std::size_t kSessions = 24;   //!< Sessions per serving run.
constexpr std::size_t kFrames = 4;      //!< Gauss-Newton steps each.

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** FNV-1a over the raw bit patterns of every variable, in key order. */
std::uint64_t
valuesDigest(const fg::Values &values)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (fg::Key key : values.keys()) {
        if (values.isPose(key)) {
            const lie::Pose &pose = values.pose(key);
            for (double d : pose.phi().data())
                mix(d);
            for (double d : pose.t().data())
                mix(d);
        } else {
            for (double d : values.vector(key).data())
                mix(d);
        }
    }
    return h;
}

/** One mission template: the localization graph of a distinct seed. */
struct Mission
{
    fg::FactorGraph graph;
    fg::Values initial;
};

struct RunOutcome
{
    std::vector<std::uint64_t> digests;  //!< Final values per session.
    std::vector<double> frame_ms;        //!< Every frame's latency.
    double elapsed_s = 0.0;
    runtime::Engine::Stats stats;
    std::uint64_t steals = 0;
    double sim_p50_us = 0.0; //!< Registry frame.simulate_us p50.
    double sim_p99_us = 0.0;
    /** Per-unit utilization (busy share) from the registry. */
    std::vector<std::pair<std::string, double>> utilization;
};

/** Registry-derived per-unit utilization over the finished run. */
std::vector<std::pair<std::string, double>>
registryUtilization()
{
    auto &metrics = runtime::MetricsRegistry::global();
    std::vector<std::pair<std::string, double>> util;
    const std::uint64_t cycles = metrics.counter("hw.cycles").value();
    if (cycles == 0)
        return util;
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
        const std::string unit =
            hw::unitName(static_cast<hw::UnitKind>(k));
        const std::uint64_t busy =
            metrics.counter("hw.busy_cycles." + unit).value();
        const std::int64_t instances =
            metrics.gauge("hw.units." + unit).value();
        if (instances <= 0)
            continue;
        util.emplace_back(unit,
                          static_cast<double>(busy) /
                              (static_cast<double>(cycles) *
                               static_cast<double>(instances)));
    }
    return util;
}

void
serveOne(runtime::Engine &engine, const Mission &mission,
         std::uint64_t &digest, double *frame_ms)
{
    runtime::Session session =
        engine.session(mission.graph, mission.initial);
    for (std::size_t f = 0; f < kFrames; ++f) {
        const auto start = Clock::now();
        session.step();
        frame_ms[f] = secondsSince(start) * 1e3;
    }
    digest = valuesDigest(session.values());
}

RunOutcome
serve(const std::vector<Mission> &missions, runtime::ServerPool *pool)
{
    // Fresh registry window per run so the utilization and histogram
    // numbers describe exactly this serving run.
    auto &metrics = runtime::MetricsRegistry::global();
    metrics.reset();

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    RunOutcome out;
    out.digests.assign(kSessions, 0);
    out.frame_ms.assign(kSessions * kFrames, 0.0);

    const auto start = Clock::now();
    if (pool != nullptr) {
        pool->parallelFor(kSessions, [&](std::size_t i) {
            serveOne(engine, missions[i % missions.size()],
                     out.digests[i], &out.frame_ms[i * kFrames]);
        });
    } else {
        for (std::size_t i = 0; i < kSessions; ++i)
            serveOne(engine, missions[i % missions.size()],
                     out.digests[i], &out.frame_ms[i * kFrames]);
    }
    out.elapsed_s = secondsSince(start);
    out.stats = engine.stats();
    out.steals = metrics.counter("pool.steals").value();
    out.sim_p50_us =
        metrics.histogram("frame.simulate_us").percentile(0.50);
    out.sim_p99_us =
        metrics.histogram("frame.simulate_us").percentile(0.99);
    out.utilization = registryUtilization();
    return out;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main()
{
    // Mission templates, one per distinct seed: same factor-graph
    // *shape*, different measurement constants, hence different
    // program-cache fingerprints.
    std::vector<Mission> missions;
    for (unsigned seed = 1; seed <= kDistinctGraphs; ++seed) {
        apps::BenchmarkApp bench =
            apps::buildApp(apps::AppKind::MobileRobot, seed);
        core::Algorithm &loc = bench.app.algorithm(0);
        missions.push_back({std::move(loc.graph), loc.values});
    }

    std::printf("serving run: %zu mobile_robot localization sessions, "
                "%u distinct graphs, %zu frames each\n",
                kSessions, kDistinctGraphs, kFrames);

    // Sequential reference: the byte-exact ground truth every
    // pool-driven run must reproduce.
    const RunOutcome reference = serve(missions, nullptr);

    std::printf("%8s %12s %10s %10s %10s %8s %12s\n", "threads",
                "sessions/s", "p50 ms", "p99 ms", "hit rate", "steals",
                "sim p99 us");

    std::ofstream json("BENCH_throughput.json");
    json << "{\n  \"sessions\": " << kSessions
         << ",\n  \"distinct_graphs\": " << kDistinctGraphs
         << ",\n  \"frames_per_session\": " << kFrames
         << ",\n  \"runs\": [\n";

    bool first = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        runtime::ServerPool pool(threads);
        const RunOutcome run = serve(missions, &pool);

        if (run.digests != reference.digests) {
            std::fprintf(stderr,
                         "FAIL: final values diverge from the "
                         "sequential run at %u threads\n", threads);
            return 1;
        }

        std::vector<double> sorted = run.frame_ms;
        std::sort(sorted.begin(), sorted.end());
        const double sessions_per_s =
            static_cast<double>(kSessions) / run.elapsed_s;
        const double p50 = percentile(sorted, 0.50);
        const double p99 = percentile(sorted, 0.99);
        const double hit_rate =
            static_cast<double>(run.stats.cacheHits) /
            static_cast<double>(run.stats.cacheHits +
                                run.stats.compiles);

        std::printf("%8u %12.1f %10.2f %10.2f %9.0f%% %8llu %12.1f\n",
                    threads, sessions_per_s, p50, p99,
                    100.0 * hit_rate,
                    static_cast<unsigned long long>(run.steals),
                    run.sim_p99_us);

        json << (first ? "" : ",\n")
             << "    {\"threads\": " << threads
             << ", \"sessions_per_s\": " << sessions_per_s
             << ", \"p50_frame_ms\": " << p50
             << ", \"p99_frame_ms\": " << p99
             << ", \"cache_hit_rate\": " << hit_rate
             << ", \"steals\": " << run.steals
             << ", \"sim_p50_us\": " << run.sim_p50_us
             << ", \"sim_p99_us\": " << run.sim_p99_us
             << ", \"utilization\": {";
        for (std::size_t u = 0; u < run.utilization.size(); ++u)
            json << (u == 0 ? "" : ", ") << '"'
                 << run.utilization[u].first
                 << "\": " << run.utilization[u].second;
        json << "}}";
        first = false;
    }
    json << "\n  ]\n}\n";
    std::printf("all thread counts byte-identical to the sequential "
                "run\nwrote BENCH_throughput.json\n");
    return 0;
}
