// Reproduces Fig. 13: frame-latency speedup of every platform over
// the ARM baseline, per application and on average.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;
    using orianna::bench::AppMeasurement;

    std::printf("Fig. 13: speedup over ARM (higher is better)\n");
    orianna::bench::rule(92);
    std::printf("%-14s %8s %8s %10s %8s %12s %12s\n", "Application",
                "ARM", "Intel", "OriannaSW", "GPU", "Orianna-IO",
                "Orianna-OoO");

    double geo[6] = {1, 1, 1, 1, 1, 1};
    int count = 0;
    for (apps::AppKind kind : apps::allApps()) {
        const AppMeasurement m = orianna::bench::measureApp(kind);
        const double values[6] = {
            1.0,
            m.armSeconds / m.intelSeconds,
            m.armSeconds / m.oriannaSwSeconds,
            m.armSeconds / m.gpuSeconds,
            m.armSeconds / m.ioSeconds,
            m.armSeconds / m.oooSeconds,
        };
        std::printf("%-14s %8.2f %8.2f %10.2f %8.2f %12.2f %12.2f\n",
                    m.name.c_str(), values[0], values[1], values[2],
                    values[3], values[4], values[5]);
        for (int i = 0; i < 6; ++i)
            geo[i] *= values[i];
        ++count;
    }
    for (double &g : geo)
        g = std::pow(g, 1.0 / count);
    orianna::bench::rule(92);
    std::printf("%-14s %8.2f %8.2f %10.2f %8.2f %12.2f %12.2f\n",
                "geomean", geo[0], geo[1], geo[2], geo[3], geo[4],
                geo[5]);
    std::printf("paper: Orianna-OoO 53.5x over ARM, 6.5x over Intel, "
                "28.6x over GPU, 6.3x over Orianna-IO;\n"
                "Orianna-SW gains <10%% over Intel.\n");
    std::printf("measured: OoO %.1fx over ARM, %.1fx over Intel, "
                "%.1fx over GPU, %.1fx over IO; SW gain %.1f%%.\n",
                geo[5], geo[5] / geo[1], geo[5] / geo[3],
                geo[5] / geo[4], 100.0 * (geo[2] / geo[1] - 1.0));
    return 0;
}
