// Reproduces Fig. 15: per-algorithm (localization / planning /
// control) speedup of ORIANNA-OoO over ARM, across all applications.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;

    std::printf("Fig. 15: per-algorithm speedup over ARM\n");
    orianna::bench::rule();
    std::printf("%-14s %14s %12s %12s\n", "Application", "Localization",
                "Planning", "Control");

    double geo[3] = {1, 1, 1};
    int count = 0;
    for (apps::AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench =
            apps::buildApp(kind, orianna::bench::kBenchSeed);
        const auto work = bench.app.frameWork();
        const auto reference = bench.app.referenceFrameWork();

        // One accelerator generated for the whole application, then
        // each algorithm measured standalone on it (the paper's
        // shared-accelerator setting).
        auto gen = hwgen::generate(work, orianna::bench::zc706Budget(),
                                   hwgen::Objective::AvgLatency, true);

        double speedups[3] = {0, 0, 0};
        for (std::size_t a = 0; a < 3; ++a) {
            const hw::SimResult accel =
                hw::simulate({work[a]}, gen.config);
            const auto arm = baselines::runOnCpu(
                baselines::arm(), {reference[a]});
            speedups[a] = arm.seconds / accel.seconds();
            geo[a] *= speedups[a];
        }
        ++count;
        std::printf("%-14s %14.1f %12.1f %12.1f\n",
                    apps::appName(kind), speedups[0], speedups[1],
                    speedups[2]);
    }
    for (double &g : geo)
        g = std::pow(g, 1.0 / count);
    orianna::bench::rule();
    std::printf("%-14s %14.1f %12.1f %12.1f\n", "geomean", geo[0],
                geo[1], geo[2]);
    std::printf("paper: localization 48.2x, planning 50.6x, control "
                "60.7x (control highest because its\n"
                "optimization variables have the highest dimensions, "
                "enabling the most parallel dispatch).\n");
    return 0;
}
