// Incremental solving on the accelerator path (DESIGN.md §13):
// modeled per-frame latency of the AcceleratedSmoother streaming a
// pose-graph corpus scenario, against the cost a batch system pays
// re-solving the whole graph every frame.
//
// The incremental run replays the scenario frame by frame: odometry
// frames re-eliminate a short ordering suffix on-device, loop
// closures reach deeper, and periodic relinearize-all frames run the
// batch reference rung. The batch baseline compiles and steps the
// flattened prefix graph at sampled trajectory lengths — the
// per-frame price of not being incremental. Both sides are modeled
// cycles from the same simulated accelerator, reported at 167 MHz.
//
// The gated scenario is the garage world: its fixed-depth closures
// converge to a steady-state suffix shape, so the whole 1200-pose
// replay amortizes onto a few dozen compiled update programs — the
// shape-cache operating point the runtime is built for. Manhattan
// closures reach back a different distance every time (every deep
// frame is a fresh shape, a fresh compile), which is exactly the
// wall-time cliff the shape fingerprint exists to dodge; run it at
// a few hundred poses to see the difference.
//
// Writes BENCH_incremental.json (p50/p99 frame latency split by
// odometry vs loop-closure frames, re-elimination counts, session
// cache traffic, the sampled batch curve, and the median speedup).
//
// Usage: bench_incremental [--scenario garage|manhattan|sphere]
//                          [--poses N] [--seed S] [--quick]
//                          [--gate-incremental X] [-o out.json]
//
//   --gate-incremental X  CI gate: median batch-resolve frame cycles
//                         over median incremental frame cycles must
//                         reach X. Self-skips (exit 0 with a note)
//                         when the trajectory is under 1000 poses —
//                         short runs under-state the batch cost.
//   --quick               ~200 poses (smoke-test scale).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/pose_graph.hpp"
#include "fg/optimizer.hpp"
#include "runtime/engine.hpp"
#include "runtime/incremental.hpp"

using namespace orianna;

namespace {

constexpr double kClockHz = 167e6;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--scenario garage|manhattan|sphere] "
                 "[--poses N] [--seed S] [--quick] "
                 "[--gate-incremental X] [-o out.json]\n"
                 "  --scenario NAME       corpus scenario (default: "
                 "garage — the shape-amortizing gated run)\n"
                 "  --poses N             trajectory length, N >= 48 "
                 "(default: 1200)\n"
                 "  --seed S              scenario seed (default: 5)\n"
                 "  --quick               ~200 poses\n"
                 "  --gate-incremental X  require batch/incremental "
                 "median frame-cycle ratio >= X (skipped below 1000 "
                 "poses)\n",
                 argv0);
    return 2;
}

apps::PoseGraphScenario
makeScenario(const std::string &kind, std::size_t poses,
             unsigned seed)
{
    if (kind == "garage")
        return apps::makeGarageWorld(
            std::max<std::size_t>(2, poses / 24), 24, seed);
    if (kind == "manhattan")
        return apps::makeManhattanWorld(poses, seed);
    if (kind == "sphere")
        return apps::makeSphereWorld(
            std::max<std::size_t>(2, poses / 20), 20, seed);
    throw std::invalid_argument("unknown scenario \"" + kind + "\"");
}

/** One replayed frame's telemetry. */
struct FrameSample
{
    std::uint64_t cycles = 0;
    std::size_t reeliminated = 0;
    bool loopClosure = false;
    bool relinearized = false;
};

double
percentile(std::vector<std::uint64_t> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(
                                         sorted.size() - 1)));
    return static_cast<double>(sorted[index]);
}

double
cyclesToUs(double cycles)
{
    return cycles / kClockHz * 1e6;
}

void
appendNumber(std::string &json, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    json += buffer;
}

/** p50/p99/mean-reelimination block for one frame class. */
std::string
classJson(const std::vector<FrameSample> &frames, bool closure)
{
    std::vector<std::uint64_t> cycles;
    double reelim = 0.0;
    for (const FrameSample &f : frames) {
        if (f.loopClosure != closure || f.relinearized)
            continue;
        cycles.push_back(f.cycles);
        reelim += static_cast<double>(f.reeliminated);
    }
    std::string json = "{\"frames\": ";
    appendNumber(json, static_cast<double>(cycles.size()));
    json += ", \"p50_us\": ";
    appendNumber(json, cyclesToUs(percentile(cycles, 0.50)));
    json += ", \"p99_us\": ";
    appendNumber(json, cyclesToUs(percentile(cycles, 0.99)));
    json += ", \"mean_reeliminated\": ";
    appendNumber(json, cycles.empty()
                           ? 0.0
                           : reelim / static_cast<double>(
                                          cycles.size()));
    json += "}";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t poses = 1200;
    unsigned seed = 5;
    double gate = 0.0;
    std::string kind = "garage";
    std::string out_path = "BENCH_incremental.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--poses" && i + 1 < argc) {
            const long value = std::atol(argv[++i]);
            if (value < 48)
                return usage(argv[0]);
            poses = static_cast<std::size_t>(value);
        } else if (arg == "--scenario" && i + 1 < argc) {
            kind = argv[++i];
            if (kind != "garage" && kind != "manhattan" &&
                kind != "sphere")
                return usage(argv[0]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--quick") {
            poses = 192;
        } else if (arg == "--gate-incremental" && i + 1 < argc) {
            gate = std::atof(argv[++i]);
            if (gate <= 0.0) {
                std::fprintf(stderr, "error: --gate-incremental "
                                     "needs a ratio > 0\n");
                return 2;
            }
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    const apps::PoseGraphScenario scenario =
        makeScenario(kind, poses, seed);
    poses = scenario.frames.size();
    std::printf("scenario %s: %zu frames, %zu loop-closure frames\n",
                scenario.name.c_str(), scenario.frames.size(),
                scenario.loopClosureFrames());

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));

    // --- Incremental replay -----------------------------------------
    // Periodic relinearize-all (every poses/10 frames) keeps the
    // batch reference rung in the measurement without letting its
    // per-shape compiles dominate wall time; the suffix cap is off so
    // every frame's cycles are modeled on-device.
    runtime::AcceleratedSmootherOptions options;
    options.params.relinearizeInterval = std::max<std::size_t>(
        10, poses / 10);
    options.params.relinearizeThreshold = 1e18;
    options.maxAcceleratedSuffix = 0;
    runtime::AcceleratedSmoother smoother(engine, options);

    std::vector<FrameSample> samples;
    samples.reserve(scenario.frames.size());
    for (const apps::PoseGraphFrame &frame : scenario.frames) {
        smoother.addVariable(frame.key,
                             scenario.initial.pose(frame.key));
        for (const fg::FactorPtr &factor : frame.factors)
            smoother.addFactor(factor);
        const fg::UpdateStats stats = smoother.update();
        FrameSample sample;
        sample.cycles = smoother.stats().lastCycles;
        sample.reeliminated = stats.eliminatedVariables;
        sample.loopClosure = frame.loopClosure;
        sample.relinearized = stats.relinearized;
        samples.push_back(sample);
    }

    std::vector<std::uint64_t> incremental_cycles;
    std::size_t relinearize_all = 0;
    for (const FrameSample &sample : samples) {
        incremental_cycles.push_back(sample.cycles);
        relinearize_all += sample.relinearized ? 1 : 0;
    }
    const double inc_p50 = percentile(incremental_cycles, 0.50);
    const double inc_p99 = percentile(incremental_cycles, 0.99);
    const runtime::AcceleratedSmootherStats &stats = smoother.stats();
    std::printf("incremental: p50 %.1f us, p99 %.1f us per frame "
                "(%zu suffix frames, %zu relinearize-all, "
                "%zu sessions opened, %zu reused)\n",
                cyclesToUs(inc_p50), cyclesToUs(inc_p99),
                stats.acceleratedFrames, stats.batchFrames,
                stats.sessionsOpened, stats.sessionReuses);

    // --- Batch baseline ---------------------------------------------
    // The cost of re-solving from scratch, sampled along the
    // trajectory: compile and step the flattened prefix graph of the
    // first k frames. Each sample is what a non-incremental system
    // pays for every frame at that trajectory length.
    const std::size_t sample_count = poses >= 1000 ? 8 : 4;
    std::vector<std::pair<std::size_t, std::uint64_t>> batch_samples;
    for (std::size_t s = 1; s <= sample_count; ++s) {
        const std::size_t k =
            scenario.frames.size() * s / sample_count;
        fg::FactorGraph prefix;
        fg::Values initial;
        for (std::size_t i = 0; i < k; ++i) {
            const apps::PoseGraphFrame &frame = scenario.frames[i];
            initial.insert(frame.key,
                           scenario.initial.pose(frame.key));
            for (const fg::FactorPtr &factor : frame.factors)
                prefix.add(factor);
        }
        auto program = engine.program(prefix, initial, 0,
                                      "batch-" + std::to_string(k));
        runtime::Session session =
            engine.openSession(std::move(program), std::move(initial));
        batch_samples.emplace_back(k, session.step().cycles);
    }
    std::vector<std::uint64_t> batch_cycles;
    for (const auto &[k, cycles] : batch_samples)
        batch_cycles.push_back(cycles);
    const double batch_p50 = percentile(batch_cycles, 0.50);
    const double speedup = batch_p50 / std::max(1.0, inc_p50);
    std::printf("batch re-solve: p50 %.1f us per frame over %zu "
                "sampled lengths -> incremental speedup %.1fx\n",
                cyclesToUs(batch_p50), batch_samples.size(), speedup);

    // Sanity: the incremental answer lands on the batch Gauss-Newton
    // fixed point of the same graph.
    const auto batch_solution =
        fg::optimize(scenario.graph(), smoother.estimate());
    double worst = 0.0;
    const fg::Values estimate = smoother.estimate();
    for (fg::Key key : estimate.keys())
        worst = std::max(worst,
                         (estimate.pose(key).t() -
                          batch_solution.values.pose(key).t())
                             .norm());
    std::printf("final max position delta vs batch GN: %.2e m\n",
                worst);

    // --- JSON artifact ----------------------------------------------
    std::string json = "{\n  \"scenario\": \"" + scenario.name +
                       "\",\n  \"poses\": ";
    appendNumber(json, static_cast<double>(poses));
    json += ",\n  \"loop_closure_frames\": ";
    appendNumber(json,
                 static_cast<double>(scenario.loopClosureFrames()));
    json += ",\n  \"clock_mhz\": ";
    appendNumber(json, kClockHz / 1e6);
    json += ",\n  \"incremental\": {\n    \"p50_us\": ";
    appendNumber(json, cyclesToUs(inc_p50));
    json += ",\n    \"p99_us\": ";
    appendNumber(json, cyclesToUs(inc_p99));
    json += ",\n    \"relinearize_all_frames\": ";
    appendNumber(json, static_cast<double>(relinearize_all));
    json += ",\n    \"odometry\": " + classJson(samples, false);
    json += ",\n    \"loop_closure\": " + classJson(samples, true);
    json += ",\n    \"sessions_opened\": ";
    appendNumber(json, static_cast<double>(stats.sessionsOpened));
    json += ",\n    \"session_reuses\": ";
    appendNumber(json, static_cast<double>(stats.sessionReuses));
    json += ",\n    \"engine_compiles\": ";
    appendNumber(json, static_cast<double>(engine.stats().compiles));
    json += "\n  },\n  \"batch\": {\n    \"p50_us\": ";
    appendNumber(json, cyclesToUs(batch_p50));
    json += ",\n    \"samples\": [";
    bool first = true;
    for (const auto &[k, cycles] : batch_samples) {
        json += first ? "\n" : ",\n";
        first = false;
        json += "      {\"poses\": ";
        appendNumber(json, static_cast<double>(k));
        json += ", \"us\": ";
        appendNumber(json, cyclesToUs(static_cast<double>(cycles)));
        json += "}";
    }
    json += "\n    ]\n  },\n  \"speedup_p50\": ";
    appendNumber(json, speedup);
    json += ",\n  \"final_max_delta_vs_batch_m\": ";
    appendNumber(json, worst);
    json += "\n}\n";

    std::ofstream out(out_path);
    out << json;
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (gate > 0.0) {
        if (poses < 1000) {
            std::printf("gate: skipped (%zu poses < 1000 — short "
                        "runs under-state the batch cost)\n",
                        poses);
            return 0;
        }
        if (speedup < gate) {
            std::fprintf(stderr,
                         "gate: FAIL: incremental speedup %.2fx "
                         "below the %.2fx floor\n",
                         speedup, gate);
            return 1;
        }
        std::printf("gate: OK (%.1fx >= %.1fx)\n", speedup, gate);
    }
    return 0;
}
