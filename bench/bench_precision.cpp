// Mixed-precision study (DESIGN.md §12, Tbl. 5-style): every Tbl. 4
// application over randomized missions, solved on the simulated
// accelerator twice — once with the fp64 datapath, once with the fp32
// datapath — comparing modeled latency, modeled energy, trajectory
// error against the fp64 result, and mission success rate.
//
// The instruction streams are identical between the two runs (the
// compiler is precision-independent); only the Program's precision
// tag differs, which switches the execution contexts to the float
// slot arena and the cost model to the fp32 latency/energy terms.
//
// Missions are independent (each builds its app from its own seed),
// so they fan out across a ServerPool; aggregation stays sequential
// and the printed table is identical to the serial run. Emits
// BENCH_precision.json for CI trending.
//
// Usage: bench_precision [-o out.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/server_pool.hpp"

namespace {

using namespace orianna;

constexpr unsigned kMissions = 30;
constexpr std::size_t kIterations = 12;

struct MissionResult
{
    bool ok64 = false;
    bool ok32 = false;
    double seconds64 = 0.0;
    double seconds32 = 0.0;
    double energy64 = 0.0;
    double energy32 = 0.0;
    /** Largest |fp32 - fp64| tangent/translation entry at the end. */
    double trajDelta = 0.0;
};

/** Largest absolute elementwise difference across all keys. */
double
maxValuesDelta(const fg::Values &a, const fg::Values &b)
{
    double worst = 0.0;
    for (fg::Key key : a.keys()) {
        if (a.isPose(key)) {
            worst = std::max(worst,
                             mat::maxDifference(a.pose(key).phi(),
                                                b.pose(key).phi()));
            worst = std::max(worst,
                             mat::maxDifference(a.pose(key).t(),
                                                b.pose(key).t()));
        } else {
            worst = std::max(worst, mat::maxDifference(
                                        a.vector(key), b.vector(key)));
        }
    }
    return worst;
}

void
appendNumber(std::string &out, double v)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.5g", v);
    out += buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_precision.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [-o out.json]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("Mixed precision: fp32 accelerator datapath vs the "
                "fp64 reference (%u missions, %zu GN steps)\n",
                kMissions, kIterations);
    orianna::bench::rule();
    std::printf("%-14s %9s %9s %7s %8s %9s %9s %10s\n", "Application",
                "fp64 us", "fp32 us", "speedx", "energy x",
                "max |d|", "ok fp64", "ok fp32");

    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    const std::vector<apps::AppKind> kinds = apps::allApps();

    // One task per (application, seed) mission; each mission builds
    // its app twice so the fp64 and fp32 solves start from identical
    // state, and results land in a private slot (no aggregation race).
    std::vector<MissionResult> results(kinds.size() * kMissions);
    runtime::ServerPool pool;
    pool.parallelFor(results.size(), [&](std::size_t i) {
        const apps::AppKind kind = kinds[i / kMissions];
        const unsigned seed = 1 + static_cast<unsigned>(i % kMissions);
        MissionResult &r = results[i];

        apps::BenchmarkApp b64 = apps::buildApp(kind, seed);
        hw::SimResult t64;
        const auto v64 =
            b64.app.solveAccelerated(config, kIterations, &t64);
        r.ok64 = b64.success(v64);
        r.seconds64 = t64.seconds();
        r.energy64 = t64.totalEnergyJ();

        apps::BenchmarkApp b32 = apps::buildApp(kind, seed);
        b32.app.compile(comp::Precision::Fp32);
        hw::SimResult t32;
        const auto v32 =
            b32.app.solveAccelerated(config, kIterations, &t32);
        r.ok32 = b32.success(v32);
        r.seconds32 = t32.seconds();
        r.energy32 = t32.totalEnergyJ();

        for (std::size_t a = 0; a < v64.size(); ++a)
            r.trajDelta = std::max(
                r.trajDelta, maxValuesDelta(v64[a], v32[a]));
    });

    struct AppRow
    {
        std::string name;
        double seconds64 = 0.0, seconds32 = 0.0;
        double energy64 = 0.0, energy32 = 0.0;
        double maxTrajDelta = 0.0;
        unsigned ok64 = 0, ok32 = 0, agree = 0;
    };
    std::vector<AppRow> rows;
    for (std::size_t a = 0; a < kinds.size(); ++a) {
        AppRow row;
        row.name = apps::appName(kinds[a]);
        for (unsigned m = 0; m < kMissions; ++m) {
            const MissionResult &r = results[a * kMissions + m];
            row.seconds64 += r.seconds64;
            row.seconds32 += r.seconds32;
            row.energy64 += r.energy64;
            row.energy32 += r.energy32;
            row.maxTrajDelta = std::max(row.maxTrajDelta, r.trajDelta);
            row.ok64 += r.ok64 ? 1 : 0;
            row.ok32 += r.ok32 ? 1 : 0;
            row.agree += (r.ok64 == r.ok32) ? 1 : 0;
        }
        std::printf("%-14s %9.1f %9.1f %6.2fx %7.2fx %9.2e %8.1f%% "
                    "%9.1f%%\n",
                    row.name.c_str(),
                    row.seconds64 / kMissions * 1e6,
                    row.seconds32 / kMissions * 1e6,
                    row.seconds64 / row.seconds32,
                    row.energy64 / row.energy32,
                    row.maxTrajDelta, 100.0 * row.ok64 / kMissions,
                    100.0 * row.ok32 / kMissions);
        rows.push_back(row);
    }
    orianna::bench::rule();
    std::printf(
        "fp32 halves the streamed words and swaps in the %.2f nJ/MAC "
        "datapath (vs %.2f); the trajectory deltas stay at fp32 "
        "round-off scale, so the success rates match fp64 on every "
        "mission the fp64 path itself solves.\n",
        hw::CostModel::macEnergyFp32Nj, hw::CostModel::macEnergyNj);

    std::string json = "{\n  \"missions\": ";
    json += std::to_string(kMissions);
    json += ",\n  \"iterations\": ";
    json += std::to_string(kIterations);
    json += ",\n  \"apps\": [";
    bool first = true;
    for (const AppRow &row : rows) {
        json += first ? "\n" : ",\n";
        first = false;
        json += "    {\"app\": \"" + row.name +
                "\", \"fp64_seconds\": ";
        appendNumber(json, row.seconds64 / kMissions);
        json += ", \"fp32_seconds\": ";
        appendNumber(json, row.seconds32 / kMissions);
        json += ", \"speedup\": ";
        appendNumber(json, row.seconds64 / row.seconds32);
        json += ", \"fp64_energy_j\": ";
        appendNumber(json, row.energy64 / kMissions);
        json += ", \"fp32_energy_j\": ";
        appendNumber(json, row.energy32 / kMissions);
        json += ", \"energy_ratio\": ";
        appendNumber(json, row.energy64 / row.energy32);
        json += ", \"max_traj_delta\": ";
        appendNumber(json, row.maxTrajDelta);
        json += ", \"success_fp64\": ";
        appendNumber(json,
                     static_cast<double>(row.ok64) / kMissions);
        json += ", \"success_fp32\": ";
        appendNumber(json,
                     static_cast<double>(row.ok32) / kMissions);
        json += ", \"agree\": ";
        json += std::to_string(row.agree);
        json += "}";
    }
    json += "\n  ]\n}\n";

    std::ofstream out(out_path);
    out << json;
    if (!out.good()) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
