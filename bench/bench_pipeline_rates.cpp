// Rate-aware pipeline study (Sec. 6.2 / 6.3): the algorithms of one
// application run at very different frequencies (e.g. control at
// 100 Hz, planning at 5 Hz). One shared ORIANNA accelerator sustains
// all of them; under stress, out-of-order dispatch and the
// MaxLatency generation objective cut the long-tail frame latency.

#include <cstdio>

#include "bench_common.hpp"
#include "hw/frame_pipeline.hpp"

namespace {

using namespace orianna;

std::vector<hw::PeriodicStream>
streamsOf(core::Application &app, double rate_scale)
{
    std::vector<hw::PeriodicStream> streams;
    for (std::size_t i = 0; i < app.size(); ++i) {
        core::Algorithm &algo = app.algorithm(i);
        streams.push_back({&algo.program, &algo.values,
                           algo.rateHz * rate_scale,
                           0.0002 * static_cast<double>(i)});
    }
    return streams;
}

void
report(const char *label, core::Application &app,
       const hw::PipelineResult &result)
{
    std::printf("%s (hot-unit utilization %.1f%%)\n", label,
                100.0 * result.utilization);
    for (std::size_t s = 0; s < result.streams.size(); ++s) {
        const auto &stats = result.streams[s];
        std::printf("  %-13s %4zu frames  mean %7.1f us  max %7.1f us"
                    "  misses %zu\n",
                    app.algorithm(s).name.c_str(), stats.frames,
                    stats.meanLatencyS * 1e6, stats.maxLatencyS * 1e6,
                    stats.deadlineMisses);
    }
}

} // namespace

int
main()
{
    apps::BenchmarkApp bench =
        apps::buildQuadrotor(orianna::bench::kBenchSeed);
    core::Application &app = bench.app;

    std::printf("pipeline study: Quadrotor algorithms at their Sec. 6.3 "
                "rates\n");
    orianna::bench::rule();

    // Nominal rates on the smallest accelerator: trivially sustained.
    const auto nominal = hw::simulatePipeline(
        streamsOf(app, 1.0), hw::AcceleratorConfig::minimal(true), 0.25);
    report("nominal rates, minimal OoO accelerator", app, nominal);

    // 60x stress: the shared accelerator saturates; compare dispatch
    // modes and generation objectives on the tail.
    std::printf("\n60x rates (stress):\n");
    const auto streams = streamsOf(app, 60.0);

    const auto io = hw::simulatePipeline(
        streams, hw::AcceleratorConfig::minimal(false), 0.02);
    report("  in-order minimal", app, io);
    const auto ooo = hw::simulatePipeline(
        streams, hw::AcceleratorConfig::minimal(true), 0.02);
    report("  out-of-order minimal", app, ooo);

    auto tail_gen = hwgen::generate(app.frameWork(),
                                    orianna::bench::zc706Budget(),
                                    hwgen::Objective::MaxLatency, true);
    const auto tuned =
        hw::simulatePipeline(streams, tail_gen.config, 0.02);
    report("  out-of-order, MaxLatency-generated", app, tuned);

    orianna::bench::rule();
    double io_max = 0.0;
    double tuned_max = 0.0;
    for (std::size_t s = 0; s < streams.size(); ++s) {
        io_max = std::max(io_max, io.streams[s].maxLatencyS);
        tuned_max = std::max(tuned_max, tuned.streams[s].maxLatencyS);
    }
    std::printf("worst-case frame latency: in-order %.0f us -> "
                "generated OoO %.0f us (%.1fx better)\n",
                io_max * 1e6, tuned_max * 1e6, io_max / tuned_max);
    return 0;
}
