// Kernel-tier microbenchmark (DESIGN.md §10): times every dispatched
// microkernel through the scalar reference table and through the best
// SIMD table this host supports, per shape, and emits
// BENCH_kernels.json with GFLOP/s and the SIMD-over-scalar speedup.
//
// Both tiers are timed through their KernelTable entries directly —
// the same indirect call either tier pays in production — so the
// ratio isolates the kernel bodies from dispatch overhead.
//
// Usage: bench_micro_kernels [--gate-simd X] [-o out.json]
//
//   --gate-simd X   CI gate: on hosts whose detected tier is avx2,
//                   fail (exit 1) unless every gemm shape with
//                   n >= 64 — fp64 and fp32 rows alike — reaches at
//                   least X times its own scalar GFLOP/s. Hosts
//                   without AVX2 (scalar or NEON detected) print a
//                   note and exit 0, so the gate is safe to run on
//                   any runner.
//
// The fp32 rows ("gemm_fp32") time the single-precision tables of
// DESIGN.md §12 — same shapes, twice the SIMD lane width — so the
// report shows the fp32-over-fp64 throughput win alongside the
// SIMD-over-scalar one.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "matrix/simd.hpp"

using namespace orianna;
namespace kernels = mat::kernels;

namespace {

using Clock = std::chrono::steady_clock;

/** Minimum measured wall time per repetition, in seconds. */
constexpr double kMinRepSeconds = 0.008;
constexpr int kRepetitions = 3;

std::vector<double>
randomBuffer(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> out(n);
    for (double &v : out)
        v = dist(rng);
    return out;
}

std::vector<float>
randomBufferF(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> out(n);
    for (float &v : out)
        v = dist(rng);
    return out;
}

/**
 * Best sustained rate of @p body (one kernel call) over kRepetitions
 * timed windows of at least kMinRepSeconds each, in GFLOP/s.
 */
template <typename Body>
double
measureGflops(double flops_per_call, Body body)
{
    body(); // Warm caches and fault in the buffers.
    double best_seconds_per_call = 1e30;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        std::size_t calls = 0;
        const Clock::time_point start = Clock::now();
        double elapsed = 0.0;
        do {
            body();
            ++calls;
            elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
        } while (elapsed < kMinRepSeconds);
        best_seconds_per_call =
            std::min(best_seconds_per_call,
                     elapsed / static_cast<double>(calls));
    }
    return flops_per_call / best_seconds_per_call / 1e9;
}

struct Entry
{
    std::string kernel;  //!< Dispatched kernel name (kernelOpName).
    std::string shape;   //!< Human-readable shape, e.g. "64x64x64".
    std::size_t n;       //!< Problem size the gate keys on.
    double scalar_gflops = 0.0;
    double simd_gflops = 0.0; //!< 0 when no fast tier is supported.
};

/** Time one kernel through @p table; dispatch by op. */
double
timeKernel(const kernels::KernelTable &table, kernels::KernelOp op,
           std::size_t m, std::size_t k, std::size_t n)
{
    using kernels::KernelOp;
    switch (op) {
    case KernelOp::Gemm: {
        const auto a = randomBuffer(m * k, 1);
        const auto b = randomBuffer(k * n, 2);
        std::vector<double> c(m * n);
        return measureGflops(
            2.0 * static_cast<double>(m * k * n), [&] {
                std::fill(c.begin(), c.end(), 0.0);
                table.gemm(a.data(), b.data(), c.data(), m, k, n);
            });
    }
    case KernelOp::GemmTransA: {
        const auto a = randomBuffer(k * m, 3);
        const auto b = randomBuffer(k * n, 4);
        std::vector<double> c(m * n);
        return measureGflops(
            2.0 * static_cast<double>(m * k * n), [&] {
                std::fill(c.begin(), c.end(), 0.0);
                table.gemmTransA(a.data(), b.data(), c.data(), k, m,
                                 n);
            });
    }
    case KernelOp::GemmTransB: {
        const auto a = randomBuffer(m * k, 5);
        const auto b = randomBuffer(n * k, 6);
        std::vector<double> c(m * n);
        return measureGflops(
            2.0 * static_cast<double>(m * k * n), [&] {
                table.gemmTransB(a.data(), b.data(), c.data(), m, k,
                                 n);
            });
    }
    case KernelOp::Gemv: {
        const auto a = randomBuffer(m * n, 7);
        const auto x = randomBuffer(n, 8);
        std::vector<double> y(m);
        return measureGflops(2.0 * static_cast<double>(m * n), [&] {
            table.gemv(a.data(), x.data(), y.data(), m, n);
        });
    }
    case KernelOp::Dot: {
        const auto a = randomBuffer(n, 9);
        const auto b = randomBuffer(n, 10);
        double sink = 0.0;
        const double out =
            measureGflops(2.0 * static_cast<double>(n), [&] {
                sink += table.dot(a.data(), b.data(), n);
            });
        // Keep the accumulation observable.
        if (sink == 0.12345)
            std::printf("#");
        return out;
    }
    case KernelOp::FusedSubtractDot: {
        const auto a = randomBuffer(n, 11);
        const auto x = randomBuffer(n, 12);
        double sink = 0.0;
        const double out =
            measureGflops(2.0 * static_cast<double>(n), [&] {
                sink = table.fusedSubtractDot(sink * 1e-300, a.data(),
                                              x.data(), n);
            });
        if (sink == 0.12345)
            std::printf("#");
        return out;
    }
    case KernelOp::AxpyNegStrided: {
        const auto x = randomBuffer(n, 13);
        auto y = randomBuffer(n, 14);
        return measureGflops(2.0 * static_cast<double>(n), [&] {
            table.axpyNegStrided(y.data(), 1, 1e-12, x.data(), n);
        });
    }
    case KernelOp::GivensRotate: {
        auto rj = randomBuffer(n, 15);
        auto ri = randomBuffer(n, 16);
        // c^2 + s^2 = 1 keeps the rows bounded over many calls.
        return measureGflops(6.0 * static_cast<double>(n), [&] {
            table.givensRotate(rj.data(), ri.data(), 0.8, 0.6, n);
        });
    }
    default:
        return 0.0;
    }
}

/** Time the fp32 gemm of @p table (the only fp32 row the bench and
 *  the gate track — it is the kernel the accelerator study leans on). */
double
timeGemm32(const kernels::KernelTable32 &table, std::size_t m,
           std::size_t k, std::size_t n)
{
    const auto a = randomBufferF(m * k, 21);
    const auto b = randomBufferF(k * n, 22);
    std::vector<float> c(m * n);
    return measureGflops(2.0 * static_cast<double>(m * k * n), [&] {
        std::fill(c.begin(), c.end(), 0.0f);
        table.gemm(a.data(), b.data(), c.data(), m, k, n);
    });
}

void
appendNumber(std::string &out, double v)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4g", v);
    out += buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    double gate = 0.0;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gate-simd" && i + 1 < argc) {
            gate = std::atof(argv[++i]);
            if (gate <= 0.0) {
                std::fprintf(stderr,
                             "error: --gate-simd needs a ratio > 0\n");
                return 2;
            }
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--gate-simd X] [-o out.json]\n", argv[0]);
            return 2;
        }
    }

    const kernels::SimdTier best = kernels::detectTier();
    const kernels::KernelTable *scalar_table =
        kernels::kernelTable(kernels::SimdTier::Scalar);
    const kernels::KernelTable *fast_table =
        best != kernels::SimdTier::Scalar ? kernels::kernelTable(best)
                                          : nullptr;
    std::printf("simd: %s\n",
                kernels::simdCapabilityString().c_str());

    struct Case
    {
        kernels::KernelOp op;
        std::size_t m, k, n;
    };
    std::vector<Case> cases;
    for (const std::size_t n : {16, 32, 64, 96, 128}) {
        cases.push_back({kernels::KernelOp::Gemm, n, n, n});
        cases.push_back({kernels::KernelOp::GemmTransA, n, n, n});
        cases.push_back({kernels::KernelOp::GemmTransB, n, n, n});
    }
    for (const std::size_t n : {64, 256, 1024})
        cases.push_back({kernels::KernelOp::Gemv, n, 0, n});
    for (const std::size_t n : {64, 256, 4096}) {
        cases.push_back({kernels::KernelOp::Dot, 0, 0, n});
        cases.push_back({kernels::KernelOp::FusedSubtractDot, 0, 0, n});
        cases.push_back({kernels::KernelOp::AxpyNegStrided, 0, 0, n});
        cases.push_back({kernels::KernelOp::GivensRotate, 0, 0, n});
    }

    std::vector<Entry> entries;
    for (const Case &c : cases) {
        Entry entry;
        entry.kernel = kernels::kernelOpName(c.op);
        entry.n = c.n;
        if (c.op == kernels::KernelOp::Gemm ||
            c.op == kernels::KernelOp::GemmTransA ||
            c.op == kernels::KernelOp::GemmTransB)
            entry.shape = std::to_string(c.m) + "x" +
                          std::to_string(c.k) + "x" +
                          std::to_string(c.n);
        else if (c.op == kernels::KernelOp::Gemv)
            entry.shape =
                std::to_string(c.m) + "x" + std::to_string(c.n);
        else
            entry.shape = std::to_string(c.n);
        entry.scalar_gflops =
            timeKernel(*scalar_table, c.op, c.m, c.k, c.n);
        if (fast_table != nullptr)
            entry.simd_gflops =
                timeKernel(*fast_table, c.op, c.m, c.k, c.n);
        const double speedup =
            entry.simd_gflops > 0.0 && entry.scalar_gflops > 0.0
                ? entry.simd_gflops / entry.scalar_gflops
                : 0.0;
        std::printf("%-18s %-12s scalar %7.3f GF/s",
                    entry.kernel.c_str(), entry.shape.c_str(),
                    entry.scalar_gflops);
        if (fast_table != nullptr)
            std::printf("  %s %7.3f GF/s  %.2fx",
                        kernels::simdTierName(best),
                        entry.simd_gflops, speedup);
        std::printf("\n");
        entries.push_back(entry);
    }

    // fp32 gemm rows: the single-precision tables over the same
    // square shapes. scalar_gflops is the fp32 *scalar* reference, so
    // the row's speedup is SIMD-over-scalar at equal precision.
    const kernels::KernelTable32 *scalar32 =
        kernels::kernelTable32(kernels::SimdTier::Scalar);
    const kernels::KernelTable32 *fast32 =
        best != kernels::SimdTier::Scalar
            ? kernels::kernelTable32(best)
            : nullptr;
    for (const std::size_t n : {16, 32, 64, 96, 128}) {
        Entry entry;
        entry.kernel = "gemm_fp32";
        entry.n = n;
        entry.shape = std::to_string(n) + "x" + std::to_string(n) +
                      "x" + std::to_string(n);
        entry.scalar_gflops = timeGemm32(*scalar32, n, n, n);
        if (fast32 != nullptr)
            entry.simd_gflops = timeGemm32(*fast32, n, n, n);
        std::printf("%-18s %-12s scalar %7.3f GF/s",
                    entry.kernel.c_str(), entry.shape.c_str(),
                    entry.scalar_gflops);
        if (fast32 != nullptr)
            std::printf("  %s %7.3f GF/s  %.2fx",
                        kernels::simdTierName(best),
                        entry.simd_gflops,
                        entry.simd_gflops / entry.scalar_gflops);
        std::printf("\n");
        entries.push_back(entry);
    }

    std::string json = "{\n  \"simd\": \"";
    json += kernels::simdCapabilityString();
    json += "\",\n  \"best_tier\": \"";
    json += kernels::simdTierName(best);
    json += "\",\n  \"kernels\": [";
    bool first = true;
    for (const Entry &entry : entries) {
        json += first ? "\n" : ",\n";
        first = false;
        json += "    {\"kernel\": \"" + entry.kernel +
                "\", \"shape\": \"" + entry.shape +
                "\", \"scalar_gflops\": ";
        appendNumber(json, entry.scalar_gflops);
        if (entry.simd_gflops > 0.0) {
            json += ", \"";
            json += kernels::simdTierName(best);
            json += "_gflops\": ";
            appendNumber(json, entry.simd_gflops);
            json += ", \"speedup\": ";
            appendNumber(json,
                         entry.simd_gflops / entry.scalar_gflops);
        }
        json += "}";
    }
    json += "\n  ]\n}\n";

    std::ofstream out(out_path);
    out << json;
    if (!out.good()) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());

    if (gate > 0.0) {
        if (best != kernels::SimdTier::Avx2) {
            // The gate's floor is calibrated for AVX2 runners (the
            // scalar TU's SSE2 baseline vs 256-bit FMA); on other
            // hosts it degrades to a no-op so CI can run it anywhere.
            std::printf("gate-simd: skipped (detected tier is %s, "
                        "gate applies to avx2 hosts)\n",
                        kernels::simdTierName(best));
            return 0;
        }
        bool ok = true;
        for (const Entry &entry : entries) {
            if ((entry.kernel != "gemm" &&
                 entry.kernel != "gemm_fp32") ||
                entry.n < 64)
                continue;
            const double speedup =
                entry.simd_gflops / entry.scalar_gflops;
            if (speedup < gate) {
                std::fprintf(stderr,
                             "gate-simd FAILED: %s %s speedup "
                             "%.2fx < %.2fx\n",
                             entry.kernel.c_str(),
                             entry.shape.c_str(), speedup, gate);
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::printf("gate-simd: OK (every gemm and gemm_fp32 shape "
                    "with n >= 64 reached %.2fx)\n",
                    gate);
    }
    return 0;
}
