// Google-benchmark microbenchmarks of the kernels the accelerator
// templates model: small matrix products, QR, back substitution and
// the Lie-group primitives of Tbl. 3.

#include <random>

#include <benchmark/benchmark.h>

#include "lie/pose.hpp"
#include "lie/se3.hpp"
#include "matrix/qr.hpp"

namespace {

using orianna::lie::Pose;
using orianna::mat::Matrix;
using orianna::mat::Vector;

Matrix
randomMatrix(std::size_t rows, std::size_t cols, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Matrix out(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            out(i, j) = dist(rng);
    return out;
}

Vector
randomVector(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Vector out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(rng);
    return out;
}

void
BM_MatMul(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(n, n, 1);
    const Matrix b = randomMatrix(n, n, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatMul)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void
BM_HouseholderQr(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(2 * n, n, 3);
    const Vector b = randomVector(2 * n, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(orianna::mat::householderQr(a, b));
}
BENCHMARK(BM_HouseholderQr)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void
BM_GivensQr(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(2 * n, n, 5);
    const Vector b = randomVector(2 * n, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(orianna::mat::givensQr(a, b));
}
BENCHMARK(BM_GivensQr)->Arg(3)->Arg(6)->Arg(12);

void
BM_BackSubstitute(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Matrix r = randomMatrix(n, n, 7);
    for (std::size_t i = 0; i < n; ++i) {
        r(i, i) += 4.0; // Well conditioned diagonal.
        for (std::size_t j = 0; j < i; ++j)
            r(i, j) = 0.0;
    }
    const Vector y = randomVector(n, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(orianna::mat::backSubstitute(r, y));
}
BENCHMARK(BM_BackSubstitute)->Arg(6)->Arg(12)->Arg(24);

void
BM_PoseOplus(benchmark::State &state)
{
    const Pose a(Vector{0.2, -0.1, 0.3}, Vector{1.0, 2.0, 3.0});
    const Pose b(Vector{-0.3, 0.2, 0.1}, Vector{0.5, -1.0, 0.25});
    for (auto _ : state)
        benchmark::DoNotOptimize(a.oplus(b));
}
BENCHMARK(BM_PoseOplus);

void
BM_Se3Compose(benchmark::State &state)
{
    const auto a = orianna::lie::Se3::exp(randomVector(6, 9) * 0.5);
    const auto b = orianna::lie::Se3::exp(randomVector(6, 10) * 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.compose(b));
}
BENCHMARK(BM_Se3Compose);

void
BM_ExpLogRoundTrip(benchmark::State &state)
{
    const Vector phi = randomVector(3, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            orianna::lie::logSo(orianna::lie::expSo(phi)));
}
BENCHMARK(BM_ExpLogRoundTrip);

void
BM_RightJacobian(benchmark::State &state)
{
    const Vector phi = randomVector(3, 12);
    for (auto _ : state)
        benchmark::DoNotOptimize(orianna::lie::rightJacobian(phi));
}
BENCHMARK(BM_RightJacobian);

} // namespace

BENCHMARK_MAIN();
