// Reproduces the Sec. 7.3 latency breakdown: in the drone (Quadrotor)
// application, the share of accelerator time spent in matrix
// decomposition, linear-equation construction, and back substitution.

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;

    apps::BenchmarkApp bench =
        apps::buildQuadrotor(orianna::bench::kBenchSeed);
    const auto work = bench.app.frameWork();
    auto gen = hwgen::generate(work, orianna::bench::zc706Budget(),
                               hwgen::Objective::AvgLatency, true);

    const auto &phases = gen.result.phaseBusyCycles;
    const double total = static_cast<double>(phases[0] + phases[1] +
                                             phases[2]);

    std::printf("Sec. 7.3: Quadrotor latency breakdown (busy cycles per "
                "phase)\n");
    orianna::bench::rule();
    std::printf("  construction (A and b):  %8llu cycles  %5.1f%%  "
                "(paper 16.0%%)\n",
                static_cast<unsigned long long>(phases[0]),
                100.0 * phases[0] / total);
    std::printf("  matrix decomposition:    %8llu cycles  %5.1f%%  "
                "(paper 74.0%%)\n",
                static_cast<unsigned long long>(phases[1]),
                100.0 * phases[1] / total);
    std::printf("  back substitution:       %8llu cycles  %5.1f%%  "
                "(paper 10.0%%)\n",
                static_cast<unsigned long long>(phases[2]),
                100.0 * phases[2] / total);
    orianna::bench::rule();
    std::printf("decomposition dominates, as in the paper; see "
                "EXPERIMENTS.md for the share discussion.\n");

    std::printf("\nunit utilization (busy cycles / makespan %llu):\n",
                static_cast<unsigned long long>(gen.result.cycles));
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
        const auto kind = static_cast<hw::UnitKind>(k);
        std::printf("  %-10s x%-2u %10llu busy\n", hw::unitName(kind),
                    gen.config.count(kind),
                    static_cast<unsigned long long>(
                        gen.result.unitBusyCycles[k]));
    }
    return 0;
}
