// Micro-benchmark of the runtime frame hot path: the per-frame cost
// of rebuilding schedule state versus reusing one warm
// ExecutionContext.
//
// Both loops simulate the same MobileRobot frame (all three compiled
// algorithms, one Gauss-Newton step) on the same minimal OoO
// accelerator; they differ only in whether dependence graph, cost
// caches, executors and scratch vectors are rebuilt per frame
// (hw::simulate) or built once and reset in place
// (runtime::ExecutionContext). Emits BENCH_runtime.json for CI
// trending.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "apps/benchmark_apps.hpp"
#include "bench_common.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/metrics.hpp"

using namespace orianna;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main()
{
    // The headline numbers measure the undisturbed hot path (metrics
    // runtime-disabled, the mode a latency-critical deployment runs
    // in); the enabled-mode loop below quantifies the instrumentation
    // overhead separately.
    runtime::MetricsRegistry::setEnabled(false);

    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, bench::kBenchSeed);
    bench.app.compile();
    const auto work = bench.app.frameWork();
    const auto config = hw::AcceleratorConfig::minimal(true);

    // Self-calibrate the frame count to keep the bench around a
    // second per path.
    std::size_t frames = 8;
    {
        const auto start = Clock::now();
        hw::SimResult warmup = hw::simulate(work, config);
        (void)warmup;
        const double per_frame = secondsSince(start);
        if (per_frame > 0.0)
            frames = static_cast<std::size_t>(
                std::max(8.0, 0.5 / per_frame));
    }

    // Old path: a fresh simulation context every frame.
    std::uint64_t checksum_fresh = 0;
    const auto fresh_start = Clock::now();
    for (std::size_t i = 0; i < frames; ++i)
        checksum_fresh += hw::simulate(work, config).cycles;
    const double fresh_s = secondsSince(fresh_start);

    // New path: one warm context, per-frame scratch reset in place.
    runtime::ExecutionContext context(work);
    std::uint64_t checksum_reused = 0;
    const auto reused_start = Clock::now();
    for (std::size_t i = 0; i < frames; ++i)
        checksum_reused += context.run(config).cycles;
    const double reused_s = secondsSince(reused_start);

    const double fresh_fps = static_cast<double>(frames) / fresh_s;
    const double reused_fps = static_cast<double>(frames) / reused_s;

    // Same warm-context loop with metrics recording on: the cost of
    // the observability layer when enabled (flushes per-unit busy
    // cycles and counters once per frame).
    runtime::MetricsRegistry::setEnabled(true);
    std::uint64_t checksum_metrics = 0;
    const auto metrics_start = Clock::now();
    for (std::size_t i = 0; i < frames; ++i)
        checksum_metrics += context.run(config).cycles;
    const double metrics_s = secondsSince(metrics_start);
    runtime::MetricsRegistry::setEnabled(false);
    const double metrics_fps = static_cast<double>(frames) / metrics_s;

    std::printf("mobile_robot frame loop, %zu frames\n", frames);
    std::printf("  fresh context per frame: %8.1f frames/s\n",
                fresh_fps);
    std::printf("  reused context:          %8.1f frames/s\n",
                reused_fps);
    std::printf("  reused + metrics on:     %8.1f frames/s\n",
                metrics_fps);
    std::printf("  speedup: %.2fx\n", reused_fps / fresh_fps);
    if (checksum_metrics != checksum_reused) {
        std::fprintf(stderr, "metrics-on cycle checksum diverges\n");
        return 1;
    }
    if (checksum_fresh != checksum_reused) {
        std::fprintf(stderr,
                     "cycle checksums diverge: %llu vs %llu\n",
                     static_cast<unsigned long long>(checksum_fresh),
                     static_cast<unsigned long long>(checksum_reused));
        return 1;
    }

    std::ofstream json("BENCH_runtime.json");
    json << "{\n"
         << "  \"app\": \"mobile_robot\",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"fresh_context_fps\": " << fresh_fps << ",\n"
         << "  \"reused_context_fps\": " << reused_fps << ",\n"
         << "  \"metrics_enabled_fps\": " << metrics_fps << ",\n"
         << "  \"speedup\": " << reused_fps / fresh_fps << "\n"
         << "}\n";
    std::printf("wrote BENCH_runtime.json\n");
    return 0;
}
