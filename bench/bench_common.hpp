#pragma once

// Shared helpers for the table/figure reproduction benches.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/benchmark_apps.hpp"
#include "baselines/platform_models.hpp"
#include "baselines/stack_model.hpp"
#include "hwgen/generator.hpp"
#include "runtime/execution_context.hpp"

namespace orianna::bench {

/**
 * Resource budget in the scale of the paper's ZC706 board (Zynq-7045:
 * 218.6k LUT, 437.2k FF, 545 BRAM36, 900 DSP), derated to a routable
 * ~60% utilization.
 */
inline hw::Resources
zc706Budget()
{
    return {131000, 262000, 327, 540};
}

/** Default mission seed for the latency/energy benches. */
constexpr unsigned kBenchSeed = 5;

/** One application's measured frame on every platform. */
struct AppMeasurement
{
    std::string name;
    double armSeconds = 0.0;
    double intelSeconds = 0.0;
    double oriannaSwSeconds = 0.0;
    double gpuSeconds = 0.0;
    double ioSeconds = 0.0;
    double oooSeconds = 0.0;
    double armEnergyJ = 0.0;
    double intelEnergyJ = 0.0;
    double gpuEnergyJ = 0.0;
    double ioEnergyJ = 0.0;
    double oooEnergyJ = 0.0;
    hw::AcceleratorConfig oooConfig;
    hw::SimResult oooResult;
};

/**
 * Measure one application frame (one Gauss-Newton step of every
 * algorithm) on every platform, with the accelerator generated under
 * the ZC706 budget.
 */
inline AppMeasurement
measureApp(apps::AppKind kind, unsigned seed = kBenchSeed)
{
    apps::BenchmarkApp bench = apps::buildApp(kind, seed);
    const auto work = bench.app.frameWork();

    AppMeasurement m;
    m.name = apps::appName(kind);

    auto gen = hwgen::generate(work, zc706Budget(),
                               hwgen::Objective::AvgLatency, true);
    m.oooConfig = gen.config;
    m.oooResult = gen.result;
    m.oooSeconds = gen.result.seconds();
    m.oooEnergyJ = gen.result.totalEnergyJ();

    hw::AcceleratorConfig io_config = gen.config;
    io_config.outOfOrder = false;
    io_config.name = "orianna-io";
    runtime::ExecutionContext context(work);
    const hw::SimResult io = context.run(io_config);
    m.ioSeconds = io.seconds();
    m.ioEnergyJ = io.totalEnergyJ();

    // Platform models consume the pre-optimization reference streams:
    // the software/GPU baselines they represent do not run ORIANNA's
    // accelerator-IR pipeline (cse, fuse).
    const auto reference = bench.app.referenceFrameWork();
    const auto arm = baselines::runOnCpu(baselines::arm(), reference);
    const auto intel =
        baselines::runOnCpu(baselines::intel(), reference);
    const auto sw =
        baselines::runOnCpu(baselines::oriannaSw(), reference);
    const auto gpu =
        baselines::runOnGpu(baselines::embeddedGpu(), reference);
    m.armSeconds = arm.seconds;
    m.intelSeconds = intel.seconds;
    m.oriannaSwSeconds = sw.seconds;
    m.gpuSeconds = gpu.seconds;
    m.armEnergyJ = arm.energyJ;
    m.intelEnergyJ = intel.energyJ;
    m.gpuEnergyJ = gpu.energyJ;
    return m;
}

/** Print a horizontal rule sized to the bench tables. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace orianna::bench
