// Reproduces Fig. 18: density of the matrix operations executed by
// VANILLA-HLS versus ORIANNA, for the three algorithms of the
// MobileRobot application. Factor-graph elimination turns one huge
// sparse decomposition into many small, dense ones.

#include <cstdio>

#include "bench_common.hpp"
#include "fg/eliminate.hpp"
#include "fg/ordering.hpp"

int
main()
{
    using namespace orianna;

    std::printf("Fig. 18: matrix-operation density, VANILLA-HLS vs "
                "ORIANNA (MobileRobot)\n");
    orianna::bench::rule();
    std::printf("%-14s %14s %16s %12s\n", "Algorithm", "HLS density",
                "Orianna density", "improvement");

    apps::BenchmarkApp bench =
        apps::buildMobileRobot(orianna::bench::kBenchSeed);
    for (std::size_t a = 0; a < bench.app.size(); ++a) {
        const core::Algorithm &algo = bench.app.algorithm(a);
        fg::LinearSystem system = algo.graph.linearize(algo.values);
        const auto ordering = fg::ordering::minDegree(algo.graph);

        fg::EliminationStats stats;
        (void)fg::solveLinearSystem(system, ordering, &stats);

        const double dense_density =
            system.toDense(ordering).density();
        double mean_density = 0.0;
        for (const auto &op : stats.qrOps)
            mean_density += op.density;
        mean_density /= static_cast<double>(stats.qrOps.size());

        std::printf("%-14s %13.1f%% %15.1f%% %11.1fx\n",
                    algo.name.c_str(), 100.0 * dense_density,
                    100.0 * mean_density,
                    mean_density / dense_density);
    }
    orianna::bench::rule();
    std::printf("paper: localization 5.3%% dense -> 58.5%% average; "
                "planning density improves 10.8x.\n");
    return 0;
}
