// Reproduces Fig. 20: frame energy under a resource budget, comparing
// accelerators generated with the energy objective against hand-tuned
// (uniform replication) designs.

#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;

    apps::BenchmarkApp bench =
        apps::buildQuadrotor(orianna::bench::kBenchSeed);
    const auto work = bench.app.frameWork();
    const auto intel = baselines::runOnCpu(
        baselines::intel(), bench.app.referenceFrameWork());

    std::printf("Fig. 20: energy reduction vs Intel under a DSP budget "
                "(Quadrotor)\n");
    orianna::bench::rule();
    std::printf("%8s %14s %14s %14s %14s\n", "DSP", "generated",
                "manual", "gen. uJ", "man. uJ");

    for (std::size_t dsp : {160u, 224u, 288u, 384u, 512u, 704u}) {
        hw::Resources budget = orianna::bench::zc706Budget();
        budget.dsp = dsp;
        auto gen = hwgen::generate(work, budget,
                                   hwgen::Objective::Energy, true);
        const auto manual_cfg = hwgen::manualDesign(budget, true);
        const auto manual = hw::simulate(work, manual_cfg);
        std::printf("%8zu %13.2fx %13.2fx %14.2f %14.2f\n", dsp,
                    intel.energyJ / gen.result.totalEnergyJ(),
                    intel.energyJ / manual.totalEnergyJ(),
                    gen.result.totalEnergyJ() * 1e6,
                    manual.totalEnergyJ() * 1e6);
    }
    orianna::bench::rule();
    std::printf("paper: the generated design consumes less energy than "
                "every manual design point.\n");
    return 0;
}
