// Reproduces Fig. 14: frame-energy reduction relative to the ARM
// baseline, per application and on average.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;
    using orianna::bench::AppMeasurement;

    std::printf("Fig. 14: energy reduction vs ARM (higher is better)\n");
    orianna::bench::rule(92);
    std::printf("%-14s %8s %8s %8s %12s %12s\n", "Application", "ARM",
                "Intel", "GPU", "Orianna-IO", "Orianna-OoO");

    double geo[5] = {1, 1, 1, 1, 1};
    int count = 0;
    for (apps::AppKind kind : apps::allApps()) {
        const AppMeasurement m = orianna::bench::measureApp(kind);
        const double values[5] = {
            1.0,
            m.armEnergyJ / m.intelEnergyJ,
            m.armEnergyJ / m.gpuEnergyJ,
            m.armEnergyJ / m.ioEnergyJ,
            m.armEnergyJ / m.oooEnergyJ,
        };
        std::printf("%-14s %8.2f %8.2f %8.2f %12.2f %12.2f\n",
                    m.name.c_str(), values[0], values[1], values[2],
                    values[3], values[4]);
        for (int i = 0; i < 5; ++i)
            geo[i] *= values[i];
        ++count;
    }
    for (double &g : geo)
        g = std::pow(g, 1.0 / count);
    orianna::bench::rule(92);
    std::printf("%-14s %8.2f %8.2f %8.2f %12.2f %12.2f\n", "geomean",
                geo[0], geo[1], geo[2], geo[3], geo[4]);
    std::printf("paper: Orianna-OoO reduces energy 3.4x vs ARM, 15.1x "
                "vs Intel, 12.3x vs GPU, 2.2x vs IO.\n");
    std::printf("measured: %.1fx vs ARM, %.1fx vs Intel, %.1fx vs GPU, "
                "%.1fx vs IO.\n",
                geo[4], geo[4] / geo[1], geo[4] / geo[2],
                geo[4] / geo[3]);
    return 0;
}
