// Reproduces Tbl. 5: mission success rate of the ORIANNA accelerator
// path versus the software reference, over randomized missions of all
// four applications. Because both paths execute the same MO-DFG math,
// they succeed and fail on exactly the same missions.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace orianna;

constexpr unsigned kMissions = 30;

} // namespace

int
main()
{
    std::printf("Table 5: mission success rate, software vs ORIANNA "
                "accelerator (%u missions)\n", kMissions);
    orianna::bench::rule();
    std::printf("%-14s %12s %12s %10s\n", "Application", "Software",
                "Orianna", "Agree");

    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    for (apps::AppKind kind : apps::allApps()) {
        unsigned sw_ok = 0;
        unsigned hw_ok = 0;
        unsigned agree = 0;
        for (unsigned seed = 1; seed <= kMissions; ++seed) {
            apps::BenchmarkApp bench = apps::buildApp(kind, seed);
            const bool sw =
                bench.success(bench.app.solveSoftware(12));
            const bool accel = bench.success(
                bench.app.solveAccelerated(config, 12));
            sw_ok += sw ? 1 : 0;
            hw_ok += accel ? 1 : 0;
            agree += (sw == accel) ? 1 : 0;
        }
        std::printf("%-14s %11.1f%% %11.1f%% %8u/%u\n",
                    apps::appName(kind),
                    100.0 * sw_ok / kMissions,
                    100.0 * hw_ok / kMissions, agree, kMissions);
    }
    orianna::bench::rule();
    std::printf("paper: MobileRobot 100%%, Manipulator 96.7%%, "
                "AutoVehicle 100%%, Quadrotor 93.3%%,\n"
                "with identical rates on both paths (the property "
                "checked by the Agree column).\n");
    return 0;
}
