// Reproduces Tbl. 5: mission success rate of the ORIANNA accelerator
// path versus the software reference, over randomized missions of all
// four applications. Because both paths execute the same MO-DFG math,
// they succeed and fail on exactly the same missions.
//
// Missions are independent (each builds its app from its own seed), so
// they fan out across a ServerPool; aggregation stays sequential and
// the printed table is identical to the serial run.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runtime/server_pool.hpp"

namespace {

using namespace orianna;

constexpr unsigned kMissions = 30;

struct MissionResult
{
    bool software = false;
    bool accelerated = false;
};

} // namespace

int
main()
{
    std::printf("Table 5: mission success rate, software vs ORIANNA "
                "accelerator (%u missions)\n", kMissions);
    orianna::bench::rule();
    std::printf("%-14s %12s %12s %10s\n", "Application", "Software",
                "Orianna", "Agree");

    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    const std::vector<apps::AppKind> kinds = apps::allApps();

    // One task per (application, seed) mission; results land in a
    // per-mission slot so the aggregation below never races.
    std::vector<MissionResult> results(kinds.size() * kMissions);
    runtime::ServerPool pool;
    pool.parallelFor(results.size(), [&](std::size_t i) {
        const apps::AppKind kind = kinds[i / kMissions];
        const unsigned seed = 1 + static_cast<unsigned>(i % kMissions);
        apps::BenchmarkApp bench = apps::buildApp(kind, seed);
        MissionResult &r = results[i];
        r.software = bench.success(bench.app.solveSoftware(12));
        r.accelerated =
            bench.success(bench.app.solveAccelerated(config, 12));
    });

    for (std::size_t a = 0; a < kinds.size(); ++a) {
        unsigned sw_ok = 0;
        unsigned hw_ok = 0;
        unsigned agree = 0;
        for (unsigned m = 0; m < kMissions; ++m) {
            const MissionResult &r = results[a * kMissions + m];
            sw_ok += r.software ? 1 : 0;
            hw_ok += r.accelerated ? 1 : 0;
            agree += (r.software == r.accelerated) ? 1 : 0;
        }
        std::printf("%-14s %11.1f%% %11.1f%% %8u/%u\n",
                    apps::appName(kinds[a]),
                    100.0 * sw_ok / kMissions,
                    100.0 * hw_ok / kMissions, agree, kMissions);
    }
    orianna::bench::rule();
    std::printf("paper: MobileRobot 100%%, Manipulator 96.7%%, "
                "AutoVehicle 100%%, Quadrotor 93.3%%,\n"
                "with identical rates on both paths (the property "
                "checked by the Agree column).\n");
    return 0;
}
