// Reproduces Fig. 16: ORIANNA versus the state-of-the-art accelerator
// baselines on the same unit templates.
//   (a) speedup over Intel  (b) energy reduction over Intel
//   (c) resource consumption (LUT / FF / BRAM / DSP).
// VANILLA-HLS runs the dense (no factor graph) program; STACK runs
// one dedicated generated accelerator per algorithm.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int
main()
{
    using namespace orianna;

    std::printf("Fig. 16a/b: speedup and energy reduction vs Intel\n");
    orianna::bench::rule(100);
    std::printf("%-14s | %9s %9s %9s %9s | %9s %9s %9s %9s\n",
                "Application", "HLSx", "STACKx", "IOx", "OoOx",
                "HLSe", "STACKe", "IOe", "OoOe");

    double geo_speed[4] = {1, 1, 1, 1};
    double geo_energy[4] = {1, 1, 1, 1};
    hw::Resources orianna_res{};
    hw::Resources stack_res{};
    hw::Resources hls_res{};
    int count = 0;

    for (apps::AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench =
            apps::buildApp(kind, orianna::bench::kBenchSeed);
        const auto work = bench.app.frameWork();
        const auto dense_work = bench.app.denseFrameWork();
        const auto intel = baselines::runOnCpu(
            baselines::intel(), bench.app.referenceFrameWork());

        // ORIANNA generated under the full board budget.
        auto gen = hwgen::generate(work, orianna::bench::zc706Budget(),
                                   hwgen::Objective::AvgLatency, true);
        hw::AcceleratorConfig io_cfg = gen.config;
        io_cfg.outOfOrder = false;
        const auto io = hw::simulate(work, io_cfg);

        // VANILLA-HLS: same templates and budget, dense program. Its
        // buffers must hold the whole [A|b], so it is generated for
        // the dense workload.
        auto hls = hwgen::generate(dense_work,
                                   orianna::bench::zc706Budget(),
                                   hwgen::Objective::AvgLatency, true);

        // STACK: three dedicated accelerators, each under a third of
        // the board (they must share the die area in silicon, but the
        // paper stacks full designs; we give each the same budget the
        // single ORIANNA accelerator gets).
        const auto stack =
            baselines::runStack(work, orianna::bench::zc706Budget());

        const double speed[4] = {
            intel.seconds / hls.result.seconds(),
            intel.seconds / stack.frameSeconds,
            intel.seconds / io.seconds(),
            intel.seconds / gen.result.seconds(),
        };
        const double energy[4] = {
            intel.energyJ / hls.result.totalEnergyJ(),
            intel.energyJ / stack.frameEnergyJ,
            intel.energyJ / io.totalEnergyJ(),
            intel.energyJ / gen.result.totalEnergyJ(),
        };
        std::printf("%-14s | %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f "
                    "%9.2f %9.2f\n",
                    apps::appName(kind), speed[0], speed[1], speed[2],
                    speed[3], energy[0], energy[1], energy[2],
                    energy[3]);
        for (int i = 0; i < 4; ++i) {
            geo_speed[i] *= speed[i];
            geo_energy[i] *= energy[i];
        }
        ++count;
        orianna_res = orianna_res + gen.config.resources();
        stack_res = stack_res + stack.totalResources;
        hls_res = hls_res + hls.config.resources();
    }
    for (int i = 0; i < 4; ++i) {
        geo_speed[i] = std::pow(geo_speed[i], 1.0 / count);
        geo_energy[i] = std::pow(geo_energy[i], 1.0 / count);
    }
    orianna::bench::rule(100);
    std::printf("%-14s | %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f "
                "%9.2f\n",
                "geomean", geo_speed[0], geo_speed[1], geo_speed[2],
                geo_speed[3], geo_energy[0], geo_energy[1],
                geo_energy[2], geo_energy[3]);
    std::printf("paper: OoO 25.6x faster / 27.5x less energy than "
                "VANILLA-HLS; ~STACK speed (1%% slower)\n"
                "with 2.9x less energy.\n");
    std::printf("measured: OoO %.1fx faster / %.1fx less energy than "
                "HLS; %.2fx STACK speed, %.1fx less energy.\n\n",
                geo_speed[3] / geo_speed[0],
                geo_energy[3] / geo_energy[0],
                geo_speed[3] / geo_speed[1],
                geo_energy[3] / geo_energy[1]);

    std::printf("Fig. 16c: resources (summed over the four apps)\n");
    orianna::bench::rule();
    std::printf("%-14s %10s %10s %10s %10s\n", "", "LUT", "FF", "BRAM",
                "DSP");
    auto print_res = [](const char *name, const hw::Resources &r) {
        std::printf("%-14s %10zu %10zu %10zu %10zu\n", name, r.lut,
                    r.ff, r.bram, r.dsp);
    };
    print_res("Orianna-OoO", orianna_res);
    print_res("VANILLA-HLS", hls_res);
    print_res("STACK", stack_res);
    std::printf("STACK/Orianna: %.1fx LUT, %.1fx FF, %.1fx BRAM, %.1fx "
                "DSP (paper: 3.4/3.0/3.2/2.0)\n",
                double(stack_res.lut) / orianna_res.lut,
                double(stack_res.ff) / orianna_res.ff,
                double(stack_res.bram) / orianna_res.bram,
                double(stack_res.dsp) / orianna_res.dsp);
    return 0;
}
