// Ablations of the design choices called out in DESIGN.md:
//   (a) elimination ordering (natural vs minimum degree),
//   (b) out-of-order granularity (Sec. 6.3: none / fine-grained only /
//       fine + coarse across algorithms),
//   (c) sensitivity to replicating the bottleneck (QR) unit.

#include <cstdio>

#include "bench_common.hpp"
#include "compiler/codegen.hpp"
#include "compiler/optimize.hpp"
#include "fg/ordering.hpp"

namespace {

using namespace orianna;

/** Recompile one algorithm with an explicit ordering. */
comp::Program
compileWithOrdering(const core::Algorithm &algo, std::vector<fg::Key> ord,
                    std::uint8_t tag)
{
    comp::CompileOptions options;
    options.ordering = std::move(ord);
    options.algorithmTag = tag;
    options.name = algo.name;
    return comp::compileGraph(algo.graph, algo.values, options);
}

} // namespace

int
main()
{
    apps::BenchmarkApp bench =
        apps::buildQuadrotor(orianna::bench::kBenchSeed);
    core::Application &app = bench.app;
    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);

    // ---- (a) elimination ordering -------------------------------
    std::printf("(a) elimination ordering (Quadrotor, minimal OoO "
                "accelerator)\n");
    orianna::bench::rule();
    std::printf("%-14s %16s %16s\n", "Algorithm", "natural",
                "min-degree");
    for (std::size_t a = 0; a < app.size(); ++a) {
        const core::Algorithm &algo = app.algorithm(a);
        const comp::Program natural = compileWithOrdering(
            algo, fg::ordering::natural(algo.graph),
            static_cast<std::uint8_t>(a));
        const comp::Program mindeg = compileWithOrdering(
            algo, fg::ordering::minDegree(algo.graph),
            static_cast<std::uint8_t>(a));
        const auto sim_nat =
            hw::simulate({{&natural, &algo.values}}, config);
        const auto sim_md =
            hw::simulate({{&mindeg, &algo.values}}, config);
        std::printf("%-14s %12.1f us %12.1f us  (%.2fx)\n",
                    algo.name.c_str(), sim_nat.seconds() * 1e6,
                    sim_md.seconds() * 1e6,
                    sim_nat.seconds() / sim_md.seconds());
    }

    // ---- (b) out-of-order granularity ----------------------------
    std::printf("\n(b) dispatch granularity (whole application)\n");
    orianna::bench::rule();
    const auto work = app.frameWork();
    const auto in_order =
        hw::simulate(work, hw::AcceleratorConfig::minimal(false));
    // Fine-grained only: each algorithm OoO, but algorithms serialized.
    double fine_only = 0.0;
    for (const auto &item : work)
        fine_only += hw::simulate({item}, config).seconds();
    const auto coarse = hw::simulate(work, config);
    std::printf("  in-order:                 %8.1f us\n",
                in_order.seconds() * 1e6);
    std::printf("  fine-grained OoO only:    %8.1f us\n",
                fine_only * 1e6);
    std::printf("  fine + coarse OoO:        %8.1f us  "
                "(coarse overlap buys %.2fx)\n",
                coarse.seconds() * 1e6, fine_only / coarse.seconds());

    // ---- (c) replicating the bottleneck unit ----------------------
    std::printf("\n(c) QR-unit replication (whole application, OoO)\n");
    orianna::bench::rule();
    for (unsigned qr : {1u, 2u, 4u, 8u}) {
        hw::AcceleratorConfig scaled = config;
        scaled.count(hw::UnitKind::Qr) = qr;
        const auto sim = hw::simulate(work, scaled);
        std::printf("  %u QR unit%s: %8.1f us\n", qr,
                    qr == 1 ? " " : "s", sim.seconds() * 1e6);
    }
    // ---- (d) post-codegen optimization passes ---------------------
    std::printf("\n(d) compiler cleanup passes (constant dedup + DCE)\n");
    orianna::bench::rule();
    for (std::size_t a = 0; a < app.size(); ++a) {
        const core::Algorithm &algo = app.algorithm(a);
        comp::CompileOptions options;
        options.algorithmTag = static_cast<std::uint8_t>(a);
        options.ordering = fg::ordering::minDegree(algo.graph);
        const comp::Program raw =
            comp::compileGraph(algo.graph, algo.values, options);
        comp::OptimizeStats stats;
        const comp::Program opt = comp::optimizeProgram(raw, &stats);
        const auto t_raw =
            hw::simulate({{&raw, &algo.values}}, config).seconds();
        const auto t_opt =
            hw::simulate({{&opt, &algo.values}}, config).seconds();
        std::printf("  %-13s %4zu -> %4zu instructions (%zu consts "
                    "merged, %zu dead), %5.1f -> %5.1f us\n",
                    algo.name.c_str(), stats.before, stats.after,
                    stats.mergedConstants, stats.removedDead,
                    t_raw * 1e6, t_opt * 1e6);
    }

    std::printf("\nthe Equ. 5 generator automates exactly this search "
                "under a resource bound.\n");
    return 0;
}
