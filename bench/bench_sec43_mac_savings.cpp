// Reproduces the Sec. 4.1/4.3 efficiency claim: the unified
// <so(3),T(3)> representation saves ~52.7% of the MAC operations of
// the linear-equation *construction* kinematics compared to SE(3),
// because it avoids the padded 4x4 homogeneous products and the 6-dim
// exponential/logarithm maps (with their V-matrix solves).
//
// The comparison mirrors what each representation actually executes
// per Gauss-Newton iteration:
//  - unified: rotations are materialized once per variable (the
//    compiler's one EXP instruction per pose), then errors use
//    3x3-only products and 3-dim Log, and retraction uses a 3-dim Exp;
//  - SE(3): errors need the 6-dim log (V-matrix solve) and padded 4x4
//    products, retraction needs the 6-dim exp and another 4x4 product.

#include <cstdio>
#include <random>
#include <vector>

#include "apps/common.hpp"
#include "bench_common.hpp"
#include "lie/se3.hpp"
#include "matrix/mac_counter.hpp"

namespace {

using namespace orianna;
using lie::Pose;
using lie::Se3;
using mat::Matrix;
using mat::Vector;

struct Workload
{
    std::vector<Pose> poses;
    std::vector<Vector> deltas; //!< 6-dim GN updates.
};

Workload
makeWorkload(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    Workload w;
    for (std::size_t i = 0; i < n; ++i) {
        w.poses.push_back(
            apps::perturbPose(Pose::identity(3), rng, 0.6, 2.0));
        w.deltas.push_back(apps::gaussianVector(6, rng, 0.05));
    }
    return w;
}

/** One construction + update pass in the unified representation. */
std::uint64_t
measureUnified(const Workload &w)
{
    mat::MacCounter::reset();
    // Rotations materialized once per variable (EXP instruction).
    std::vector<Matrix> rot;
    rot.reserve(w.poses.size());
    for (const Pose &p : w.poses)
        rot.push_back(lie::expSo(p.phi()));

    // Between errors along the chain: Log(R2^T R1), R2^T (t1 - t2).
    for (std::size_t i = 0; i + 1 < w.poses.size(); ++i) {
        const Matrix r2t = rot[i + 1].transpose();
        (void)lie::logSo(r2t * rot[i]);
        (void)(r2t * (w.poses[i].t() - w.poses[i + 1].t()));
    }
    // Retraction: R Exp(dphi), t + dt.
    for (std::size_t i = 0; i < w.poses.size(); ++i) {
        (void)(rot[i] * lie::expSo(w.deltas[i].segment(0, 3)));
        (void)(w.poses[i].t() + w.deltas[i].segment(3, 3));
    }
    return mat::MacCounter::value();
}

/** The same pass in SE(3). */
std::uint64_t
measureSe3(const Workload &w)
{
    std::vector<Se3> poses;
    poses.reserve(w.poses.size());
    for (const Pose &p : w.poses)
        poses.push_back(Se3::fromPose(p));

    mat::MacCounter::reset();
    // Between errors: log of the padded relative transform (6-dim,
    // V-matrix solve included).
    for (std::size_t i = 0; i + 1 < poses.size(); ++i)
        (void)poses[i + 1].between(poses[i]).log();
    // Retraction: 6-dim exp plus a 4x4 compose.
    for (std::size_t i = 0; i < poses.size(); ++i)
        (void)poses[i].retract(w.deltas[i]);
    return mat::MacCounter::value();
}

} // namespace

int
main()
{
    std::printf("Sec. 4.3: construction-kinematics MAC savings of "
                "<so(3),T(3)> over SE(3)\n");
    orianna::bench::rule();

    std::printf("%10s %14s %14s %10s\n", "poses", "unified", "SE(3)",
                "saved");
    double total_saved = 0.0;
    int rows = 0;
    for (std::size_t n : {50u, 200u, 800u}) {
        const Workload w = makeWorkload(n, 11 + n);
        const std::uint64_t unified = measureUnified(w);
        const std::uint64_t se3 = measureSe3(w);
        const double saved =
            100.0 * (1.0 - static_cast<double>(unified) /
                               static_cast<double>(se3));
        std::printf("%10zu %14lu %14lu %9.1f%%\n", n,
                    static_cast<unsigned long>(unified),
                    static_cast<unsigned long>(se3), saved);
        total_saved += saved;
        ++rows;
    }
    orianna::bench::rule();
    std::printf("average %.1f%% of construction MACs saved "
                "(paper: 52.7%%; Sec. 4.1 claims >2x extra MACs\n"
                "for SE(3), i.e. >50%% savings).\n", total_saved / rows);
    return 0;
}
