// Reproduces Tbl. 1 / Fig. 9 (Sec. 4.3): absolute trajectory error of
// the multi-layer sphere benchmark for the initial (dead-reckoned)
// trajectory and for optimizations in the unified <so(3),T(3)> and
// classic SE(3) representations. Also writes the Fig. 9 trajectory
// series as CSV for plotting.

#include <cstdio>
#include <fstream>

#include "apps/sphere.hpp"
#include "bench_common.hpp"

namespace {

using namespace orianna;

void
printRow(const char *label, const apps::AteStats &s)
{
    std::printf("%-16s %10.3f %10.3f %10.3f %10.3f\n", label, s.max,
                s.mean, s.min, s.stddev);
}

void
writeCsv(const char *path, const std::vector<lie::Pose> &trajectory)
{
    std::ofstream out(path);
    out << "x,y,z\n";
    for (const lie::Pose &pose : trajectory)
        out << pose.t()[0] << "," << pose.t()[1] << "," << pose.t()[2]
            << "\n";
}

} // namespace

int
main()
{
    std::printf("Table 1 / Fig. 9: sphere trajectory accuracy "
                "(<so(3),T(3)> vs SE(3))\n");
    orianna::bench::rule();

    // Larger noise than the unit tests so the initial drift is severe,
    // as in Fig. 9a.
    auto data = apps::makeSphere(10, 16, 10.0, 7, 0.01, 0.05);

    const auto initial = apps::computeAte(data.initial, data.truth);
    const auto unified_traj = apps::optimizeSphereUnified(data, 10);
    const auto se3_traj = apps::optimizeSphereSe3(data, 10);
    const auto unified = apps::computeAte(unified_traj, data.truth);
    const auto se3 = apps::computeAte(se3_traj, data.truth);

    std::printf("%-16s %10s %10s %10s %10s   (unit: meters)\n", "", "Max",
                "Mean", "Min", "Std");
    printRow("Initial Error", initial);
    printRow("<so(3),T(3)>", unified);
    printRow("SE(3)", se3);
    orianna::bench::rule();
    std::printf("paper: initial 62.695/17.671/0.595/9.998, both "
                "optimized ~0.036/0.007/0.000/0.005\n");
    std::printf("shape check: optimized mean is %.0fx below initial; "
                "representations agree within %.1f%%\n",
                initial.mean / unified.mean,
                100.0 * std::abs(unified.mean - se3.mean) /
                    std::max(unified.mean, se3.mean));

    writeCsv("fig9_truth.csv", data.truth);
    writeCsv("fig9_initial.csv", data.initial);
    writeCsv("fig9_optimized.csv", unified_traj);
    std::printf("Fig. 9 series written to fig9_{truth,initial,"
                "optimized}.csv\n");
    return 0;
}
