// Cross-module integration tests: software path vs accelerator path
// on whole applications, scheduling invariants, and end-to-end
// reproduction properties that the benches rely on.

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "apps/sphere.hpp"
#include "baselines/platform_models.hpp"
#include "baselines/stack_model.hpp"
#include "hwgen/generator.hpp"

namespace {

using namespace orianna;
using apps::AppKind;
using hw::AcceleratorConfig;

struct Case
{
    AppKind kind;
    unsigned seed;
};

class CrossPath : public ::testing::TestWithParam<Case>
{};

TEST_P(CrossPath, AcceleratorTracksSoftwareValues)
{
    // Beyond the boolean Tbl. 5 parity: the optimized states of the
    // two paths agree numerically on every variable.
    apps::BenchmarkApp bench =
        apps::buildApp(GetParam().kind, GetParam().seed);
    const auto sw = bench.app.solveSoftware(10);
    const auto accel = bench.app.solveAccelerated(
        AcceleratorConfig::minimal(true), 10);

    ASSERT_EQ(sw.size(), accel.size());
    for (std::size_t a = 0; a < sw.size(); ++a) {
        for (fg::Key key : sw[a].keys()) {
            if (sw[a].isPose(key)) {
                EXPECT_LT(lie::poseDistance(sw[a].pose(key),
                                            accel[a].pose(key)),
                          2e-3)
                    << "algorithm " << a << " key " << key;
            } else {
                EXPECT_LT(mat::maxDifference(sw[a].vector(key),
                                             accel[a].vector(key)),
                          2e-3)
                    << "algorithm " << a << " key " << key;
            }
        }
    }
}

TEST_P(CrossPath, InOrderAndOutOfOrderAgreeFunctionally)
{
    // Scheduling must never change the numerics, only the timing.
    apps::BenchmarkApp bench =
        apps::buildApp(GetParam().kind, GetParam().seed);
    const auto work = bench.app.frameWork();
    const auto ooo =
        hw::simulate(work, AcceleratorConfig::minimal(true));
    const auto io =
        hw::simulate(work, AcceleratorConfig::minimal(false));
    ASSERT_EQ(ooo.deltas.size(), io.deltas.size());
    for (std::size_t w = 0; w < ooo.deltas.size(); ++w)
        for (const auto &[key, delta] : ooo.deltas[w])
            EXPECT_LT(mat::maxDifference(delta, io.deltas[w].at(key)),
                      1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, CrossPath,
    ::testing::Values(Case{AppKind::MobileRobot, 2},
                      Case{AppKind::Manipulator, 3},
                      Case{AppKind::AutoVehicle, 4},
                      Case{AppKind::Quadrotor, 5}),
    [](const ::testing::TestParamInfo<Case> &info) {
        return std::string(apps::appName(info.param.kind)) +
               std::to_string(info.param.seed);
    });

TEST(Scheduling, BusyCyclesRespectUnitCapacity)
{
    apps::BenchmarkApp bench = apps::buildMobileRobot(6);
    const auto work = bench.app.frameWork();
    AcceleratorConfig config = AcceleratorConfig::minimal(true);
    config.count(hw::UnitKind::MatMul) = 3;
    config.count(hw::UnitKind::Buffer) = 2;
    const auto sim = hw::simulate(work, config);

    // No unit kind can be busier than (instances x makespan).
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
        EXPECT_LE(sim.unitBusyCycles[k],
                  static_cast<std::uint64_t>(config.units[k]) *
                      sim.cycles)
            << hw::unitName(static_cast<hw::UnitKind>(k));
    }
    // Every algorithm finishes within the makespan.
    for (const auto &[tag, finish] : sim.algorithmFinishCycle)
        EXPECT_LE(finish, sim.cycles);
}

TEST(Scheduling, CompilationIsDeterministic)
{
    apps::BenchmarkApp a = apps::buildQuadrotor(9);
    apps::BenchmarkApp b = apps::buildQuadrotor(9);
    for (std::size_t i = 0; i < a.app.size(); ++i) {
        const auto &pa = a.app.algorithm(i).program;
        const auto &pb = b.app.algorithm(i).program;
        ASSERT_EQ(pa.instructions.size(), pb.instructions.size());
        for (std::size_t j = 0; j < pa.instructions.size(); ++j) {
            EXPECT_EQ(pa.instructions[j].op, pb.instructions[j].op);
            EXPECT_EQ(pa.instructions[j].dst, pb.instructions[j].dst);
        }
    }
}

TEST(Baselines, OrderingAcrossPlatformsHolds)
{
    // The qualitative Fig. 13/16 ordering must hold for every app,
    // not just in aggregate.
    for (AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench = apps::buildApp(kind, 7);
        const auto work = bench.app.frameWork();
        const auto arm = baselines::runOnCpu(baselines::arm(), work);
        const auto intel =
            baselines::runOnCpu(baselines::intel(), work);
        const auto accel =
            hw::simulate(work, AcceleratorConfig::minimal(true));
        EXPECT_GT(arm.seconds, intel.seconds) << apps::appName(kind);
        EXPECT_GT(intel.seconds, accel.seconds())
            << apps::appName(kind);
    }
}

TEST(Baselines, StackBeatsSharedOnLatencyButNotResources)
{
    apps::BenchmarkApp bench = apps::buildAutoVehicle(8);
    const auto work = bench.app.frameWork();
    const hw::Resources budget{131000, 262000, 327, 540};

    auto shared = hwgen::generate(work, budget,
                                  hwgen::Objective::AvgLatency, true);
    auto stack = baselines::runStack(work, budget);

    // Three dedicated accelerators in parallel are at least as fast...
    EXPECT_LE(stack.frameSeconds, shared.result.seconds() * 1.2);
    // ...but cost far more resources than the shared design.
    EXPECT_GT(stack.totalResources.lut,
              shared.config.resources().lut * 3 / 2);
}

TEST(Sphere, BothRepresentationsBeatDeadReckoning)
{
    auto data = apps::makeSphere(6, 10, 10.0, 11, 0.01, 0.05);
    const auto initial = apps::computeAte(data.initial, data.truth);
    const auto unified =
        apps::computeAte(apps::optimizeSphereUnified(data), data.truth);
    const auto se3 =
        apps::computeAte(apps::optimizeSphereSe3(data), data.truth);
    EXPECT_LT(unified.mean, initial.mean / 4.0);
    EXPECT_LT(se3.mean, initial.mean / 4.0);
}

TEST(Hwgen, GeneratedConfigServesBothSchedulers)
{
    // The IO variant of a generated config must stay functional (the
    // Fig. 13/14 measurement depends on it).
    apps::BenchmarkApp bench = apps::buildManipulator(12);
    const auto work = bench.app.frameWork();
    auto gen = hwgen::generate(work, hw::Resources{131000, 262000, 327,
                                                   540});
    hw::AcceleratorConfig io = gen.config;
    io.outOfOrder = false;
    const auto sim = hw::simulate(work, io);
    EXPECT_GT(sim.cycles, gen.result.cycles);
    EXPECT_EQ(sim.deltas.size(), work.size());
}

} // namespace
