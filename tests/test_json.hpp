#pragma once

// Minimal recursive-descent JSON reader for test assertions on the
// files the tools emit (metrics registry dumps, Perfetto traces).
// Supports the full value grammar the exporters produce: objects,
// arrays, strings with backslash escapes, numbers, booleans and null.
// Parse errors throw std::runtime_error with a byte offset so a
// malformed export fails the test with a usable message.

#include <cctype>
#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace orianna::test {

class JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonPtr> items;
    std::map<std::string, JsonPtr> fields;

    bool isNull() const { return kind == Kind::Null; }

    double
    asNumber() const
    {
        if (kind != Kind::Number)
            throw std::runtime_error("json: not a number");
        return number;
    }

    const std::string &
    asString() const
    {
        if (kind != Kind::String)
            throw std::runtime_error("json: not a string");
        return text;
    }

    const std::vector<JsonPtr> &
    asArray() const
    {
        if (kind != Kind::Array)
            throw std::runtime_error("json: not an array");
        return items;
    }

    const std::map<std::string, JsonPtr> &
    asObject() const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("json: not an object");
        return fields;
    }

    bool
    has(const std::string &key) const
    {
        return asObject().count(key) != 0;
    }

    /** Member access; throws when the key is absent. */
    const JsonValue &
    at(const std::string &key) const
    {
        const auto &object = asObject();
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("json: missing key \"" + key +
                                     "\"");
        return *it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &input) : input_(input) {}

    JsonPtr
    parse()
    {
        JsonPtr value = parseValue();
        skipSpace();
        if (pos_ != input_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void
    skipSpace()
    {
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= input_.size())
            fail("unexpected end of input");
        return input_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        skipSpace();
        if (input_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonPtr
    parseValue()
    {
        const char c = peek();
        auto value = std::make_shared<JsonValue>();
        if (c == '{') {
            value->kind = JsonValue::Kind::Object;
            ++pos_;
            if (peek() == '}') {
                ++pos_;
                return value;
            }
            while (true) {
                const std::string key = parseString();
                expect(':');
                value->fields.emplace(key, parseValue());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return value;
            }
        }
        if (c == '[') {
            value->kind = JsonValue::Kind::Array;
            ++pos_;
            if (peek() == ']') {
                ++pos_;
                return value;
            }
            while (true) {
                value->items.push_back(parseValue());
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return value;
            }
        }
        if (c == '"') {
            value->kind = JsonValue::Kind::String;
            value->text = parseString();
            return value;
        }
        if (consume("true")) {
            value->kind = JsonValue::Kind::Bool;
            value->boolean = true;
            return value;
        }
        if (consume("false")) {
            value->kind = JsonValue::Kind::Bool;
            value->boolean = false;
            return value;
        }
        if (consume("null"))
            return value;
        value->kind = JsonValue::Kind::Number;
        value->number = parseNumber();
        return value;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < input_.size()) {
            const char c = input_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= input_.size())
                    fail("unterminated escape");
                const char e = input_[pos_++];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case '/': out += '/'; break;
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case 'u':
                    // The exporters never emit \u escapes; accept and
                    // substitute so a foreign file still parses.
                    if (pos_ + 4 > input_.size())
                        fail("truncated \\u escape");
                    pos_ += 4;
                    out += '?';
                    break;
                default: fail("unknown escape");
                }
                continue;
            }
            out += c;
        }
        fail("unterminated string");
    }

    double
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(input_.substr(start), &consumed);
        } catch (const std::exception &) {
            fail("malformed number");
        }
        pos_ = start + consumed;
        return value;
    }

    const std::string &input_;
    std::size_t pos_ = 0;
};

inline JsonPtr
parseJson(const std::string &input)
{
    return JsonParser(input).parse();
}

// --- Shared helpers for JSON-consuming tests ------------------------
//
// Everything below is gtest-free (throws on failure, which any test
// framework reports with the message) so the header stays usable from
// helper code outside TEST bodies.

/** Whole file as a string; throws when unreadable. */
inline std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Parse the JSON document stored at @p path. */
inline JsonPtr
parseJsonFile(const std::string &path)
{
    try {
        return parseJson(slurp(path));
    } catch (const std::exception &error) {
        throw std::runtime_error(path + ": " + error.what());
    }
}

/**
 * A counter from a metrics-registry export (Engine::metricsJson() or
 * a --metrics file): root.counters[name]. Throws when absent, so a
 * renamed counter fails loudly instead of comparing against 0.
 */
inline double
counterValue(const JsonValue &root, const std::string &name)
{
    return root.at("counters").at(name).asNumber();
}

/**
 * A numeric field of a healthJson()/protocol response object; same
 * loud-failure contract as counterValue().
 */
inline double
numberField(const JsonValue &root, const std::string &name)
{
    return root.at(name).asNumber();
}

} // namespace orianna::test
