// Tests for the iSAM-style incremental smoother: exact agreement with
// batch elimination at the same linearization point, and tracking of
// the full nonlinear solution across a growing trajectory.

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "fg/factors.hpp"
#include "fg/incremental.hpp"
#include "fg/optimizer.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::IncrementalSmoother;
using fg::Key;
using fg::Values;
using lie::Pose;
using mat::Vector;

/** Odometry stream: ground truth plus noisy relative measurements. */
struct Stream
{
    std::vector<Pose> truth;
    std::vector<Pose> odometry; //!< odometry[i]: i -> i+1 measurement.
};

Stream
makeStream(std::size_t n, std::size_t dim, unsigned seed)
{
    std::mt19937 rng(seed);
    Stream s;
    Pose current = Pose::identity(dim);
    for (std::size_t i = 0; i < n; ++i) {
        s.truth.push_back(current);
        Pose step = randomPose(dim, rng, 0.15, 0.8);
        if (i + 1 < n)
            s.odometry.push_back(
                step.retract(randomVector(step.dof(), rng, 0.01)));
        current = current.oplus(step);
    }
    return s;
}

/** Feed the first @p frames of the stream into a smoother. */
IncrementalSmoother
runStream(const Stream &s, std::size_t frames,
          fg::IncrementalParams params = {})
{
    IncrementalSmoother smoother(params);
    const std::size_t dof = s.truth[0].dof();
    smoother.addVariable(0u, s.truth[0]);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, s.truth[0], fg::isotropicSigmas(dof, 0.01)));
    smoother.update();
    for (std::size_t i = 1; i < frames; ++i) {
        // Dead-reckoned initial guess from the previous estimate.
        const Pose previous = smoother.estimate().pose(i - 1);
        smoother.addVariable(i, previous.oplus(s.odometry[i - 1]));
        smoother.addFactor(std::make_shared<fg::BetweenFactor>(
            i - 1, i, s.odometry[i - 1],
            fg::isotropicSigmas(dof, 0.02)));
        smoother.update();
    }
    return smoother;
}

TEST(Incremental, MatchesBatchGaussNewton)
{
    const Stream s = makeStream(12, 3, 71);
    IncrementalSmoother smoother = runStream(s, 12);

    // Batch: same graph, fully optimized.
    Values batch_init;
    for (std::size_t i = 0; i < 12; ++i)
        batch_init.insert(i, smoother.estimate().pose(i));
    auto batch = fg::optimize(smoother.graph(), batch_init);

    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_LT(lie::poseDistance(smoother.estimate().pose(i),
                                    batch.values.pose(i)),
                  1e-5)
            << "pose " << i;
}

TEST(Incremental, OnlySuffixReEliminated)
{
    const Stream s = makeStream(30, 2, 72);
    fg::IncrementalParams params;
    params.relinearizeInterval = 1000; // Never, for this check.
    params.relinearizeThreshold = 1e9;
    IncrementalSmoother smoother(params);

    smoother.addVariable(0u, s.truth[0]);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, s.truth[0], fg::isotropicSigmas(3, 0.01)));
    auto first = smoother.update();
    EXPECT_TRUE(first.relinearized); // First update is the batch.

    for (std::size_t i = 1; i < 30; ++i) {
        const Pose previous = smoother.estimate().pose(i - 1);
        smoother.addVariable(i, previous.oplus(s.odometry[i - 1]));
        smoother.addFactor(std::make_shared<fg::BetweenFactor>(
            i - 1, i, s.odometry[i - 1],
            fg::isotropicSigmas(3, 0.02)));
        auto stats = smoother.update();
        EXPECT_FALSE(stats.relinearized);
        // A chain update touches only the last pose and the new one.
        EXPECT_LE(stats.eliminatedVariables, 2u) << "frame " << i;
        EXPECT_EQ(stats.totalVariables, i + 1);
    }
}

TEST(Incremental, LoopClosureReEliminatesFromAnchor)
{
    const Stream s = makeStream(20, 2, 73);
    fg::IncrementalParams params;
    params.relinearizeInterval = 1000;
    params.relinearizeThreshold = 1e9;
    IncrementalSmoother smoother = runStream(s, 20, params);

    // Close the loop to pose 5: everything from position 5 onward
    // must be re-eliminated, but not the first five variables.
    smoother.addFactor(std::make_shared<fg::BetweenFactor>(
        5u, 19u, s.truth[19].ominus(s.truth[5]),
        fg::isotropicSigmas(3, 0.02)));
    auto stats = smoother.update();
    EXPECT_FALSE(stats.relinearized);
    EXPECT_EQ(stats.eliminatedVariables, 15u);
}

TEST(Incremental, IncrementalEqualsBatchAtSameLinearization)
{
    // The defining exactness property: with relinearization disabled,
    // the incremental solution equals a from-scratch elimination of
    // the same rows at the same linearization point.
    const Stream s = makeStream(15, 3, 74);
    fg::IncrementalParams inc_params;
    inc_params.relinearizeInterval = 1000;
    inc_params.relinearizeThreshold = 1e9;
    fg::IncrementalParams batch_params;
    batch_params.relinearizeInterval = 1; // Re-solve fully each time.
    batch_params.relinearizeThreshold = 1e9;

    IncrementalSmoother incremental = runStream(s, 15, inc_params);
    IncrementalSmoother batch = runStream(s, 15, batch_params);

    // Both track the truth closely; and since the odometry noise is
    // small the once-linearized incremental answer stays within
    // linearization error of the always-relinearized one.
    for (std::size_t i = 0; i < 15; ++i)
        EXPECT_LT(lie::poseDistance(incremental.estimate().pose(i),
                                    batch.estimate().pose(i)),
                  5e-3)
            << "pose " << i;
}

TEST(Incremental, RelinearizationTriggersOnThreshold)
{
    const Stream s = makeStream(6, 2, 75);
    fg::IncrementalParams params;
    params.relinearizeInterval = 1000;
    params.relinearizeThreshold = 1e-6; // Essentially always.
    IncrementalSmoother smoother(params);
    smoother.addVariable(0u, s.truth[0]);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, s.truth[0], fg::isotropicSigmas(3, 0.01)));
    smoother.update();
    smoother.addVariable(1u, s.truth[0].oplus(s.odometry[0]));
    smoother.addFactor(std::make_shared<fg::BetweenFactor>(
        0u, 1u, s.odometry[0], fg::isotropicSigmas(3, 0.02)));
    // Perturb by queueing a factor that moves the solution.
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        1u, s.truth[0].oplus(s.odometry[0]).retract(
                Vector{0.3, 0.3, 0.3}),
        fg::isotropicSigmas(3, 0.05)));
    auto stats = smoother.update();
    // First non-initial update: delta from the previous solve was
    // zero, so this one may or may not relinearize; the next must.
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        1u, s.truth[0].oplus(s.odometry[0]),
        fg::isotropicSigmas(3, 0.05)));
    stats = smoother.update();
    EXPECT_TRUE(stats.relinearized);
}

TEST(Incremental, RelinearizeIntervalZeroMeansNever)
{
    // interval = 0 disables interval-based relinearization entirely
    // (it used to be a modulo-by-zero). With the threshold also out
    // of reach, no update after the first may relinearize, and the
    // run is indistinguishable from a huge interval.
    const Stream s = makeStream(25, 2, 76);
    fg::IncrementalParams never;
    never.relinearizeInterval = 0;
    never.relinearizeThreshold = 1e9;
    IncrementalSmoother smoother(never);
    smoother.addVariable(0u, s.truth[0]);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, s.truth[0], fg::isotropicSigmas(3, 0.01)));
    EXPECT_TRUE(smoother.update().relinearized); // Initial batch.
    for (std::size_t i = 1; i < 25; ++i) {
        const Pose previous = smoother.estimate().pose(i - 1);
        smoother.addVariable(i, previous.oplus(s.odometry[i - 1]));
        smoother.addFactor(std::make_shared<fg::BetweenFactor>(
            i - 1, i, s.odometry[i - 1],
            fg::isotropicSigmas(3, 0.02)));
        EXPECT_FALSE(smoother.update().relinearized)
            << "frame " << i;
    }

    fg::IncrementalParams huge;
    huge.relinearizeInterval = 1000;
    huge.relinearizeThreshold = 1e9;
    IncrementalSmoother reference = runStream(s, 25, huge);
    for (std::size_t i = 0; i < 25; ++i)
        EXPECT_LT(lie::poseDistance(smoother.estimate().pose(i),
                                    reference.estimate().pose(i)),
                  1e-12)
            << "pose " << i;
}

TEST(Incremental, FactorlessUpdateRelinearizesOnThreshold)
{
    // The threshold check compares the delta of the *previous* solve,
    // so a factor-less "polish" update is how a large correction gets
    // folded into the linearization point. update() used to return
    // early when no factors were pending, skipping that check.
    const Stream s = makeStream(8, 2, 77);
    fg::IncrementalParams params;
    params.relinearizeInterval = 0;
    params.relinearizeThreshold = 1e-3;
    IncrementalSmoother smoother = runStream(s, 8, params);

    // Pull the last pose well away from the estimate; the solve here
    // leaves a delta far above the threshold.
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        7u,
        smoother.estimate().pose(7).retract(Vector{0.4, 0.5, -0.5}),
        fg::isotropicSigmas(3, 0.01)));
    smoother.update();

    const Values before = smoother.estimate();
    auto stats = smoother.update(); // No pending factors.
    EXPECT_TRUE(stats.relinearized);
    EXPECT_EQ(stats.eliminatedVariables, stats.totalVariables);
    EXPECT_EQ(stats.totalVariables, 8u);
    // The polish moved the solution (one more Gauss-Newton step at
    // the refreshed linearization point).
    double moved = 0.0;
    for (std::size_t i = 0; i < 8; ++i)
        moved = std::max(moved,
                         lie::poseDistance(before.pose(i),
                                           smoother.estimate().pose(i)));
    EXPECT_GT(moved, 0.0);
}

TEST(Incremental, ErrorsRejected)
{
    IncrementalSmoother smoother;
    EXPECT_THROW(smoother.addFactor(nullptr), std::invalid_argument);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        7u, Pose::identity(2), fg::isotropicSigmas(3, 0.1)));
    // Variable 7 was never added.
    EXPECT_THROW(smoother.update(), std::runtime_error);
}

} // namespace
