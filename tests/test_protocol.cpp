// JSON serving-protocol conformance (DESIGN.md §11): every op
// round-trips in process through ProtocolServer with the responses
// checked by the shared test JSON parser; unknown fields are ignored
// (schema tolerance); and a table of malformed requests maps each
// failure shape to its typed error without disturbing server state.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "runtime/engine.hpp"
#include "runtime/serving_protocol.hpp"
#include "test_json.hpp"

namespace {

using namespace orianna;
using orianna::test::JsonPtr;
using orianna::test::numberField;
using orianna::test::parseJson;
using runtime::ProtocolOptions;
using runtime::ProtocolServer;
using runtime::SubmittedGraph;

/** A server over the real benchmark apps, like runtime_server wires. */
class ProtocolTest : public ::testing::Test
{
  protected:
    /**
     * Pinned fp64 regardless of ORIANNA_PRECISION: the exact compile
     * counts and "precision":"fp64" assertions below are the fp64
     * contract (the fp32 side constructs its own engine).
     */
    static runtime::EngineOptions
    fp64Options()
    {
        runtime::EngineOptions options;
        options.precision = comp::Precision::Fp64;
        return options;
    }

    static void
    registerApps(ProtocolServer &server)
    {
        for (const apps::AppKind kind : apps::allApps()) {
            server.registerApp(
                apps::appName(kind),
                [kind](const std::string &algorithm, unsigned seed) {
                    apps::BenchmarkApp app = apps::buildApp(kind, seed);
                    const core::Algorithm *chosen =
                        algorithm.empty() ? &app.app.algorithm(0)
                                          : app.app.find(algorithm);
                    if (chosen == nullptr)
                        throw std::invalid_argument(
                            "unknown algorithm: " + algorithm);
                    return SubmittedGraph{chosen->graph, chosen->values,
                                          chosen->stepScale};
                });
        }
    }

    ProtocolTest()
        : engine_(hw::AcceleratorConfig::minimal(true), fp64Options()),
          server_(engine_)
    {
        registerApps(server_);
    }

    /** Handle @p line and parse the response (throws when invalid). */
    JsonPtr
    roundTrip(const std::string &line)
    {
        return parseJson(server_.handle(line));
    }

    /** Expect a typed error response for @p line. */
    void
    expectError(const std::string &line, const std::string &type)
    {
        const JsonPtr response = roundTrip(line);
        EXPECT_FALSE(response->at("ok").boolean) << line;
        EXPECT_EQ(response->at("error").asString(), type) << line;
        EXPECT_FALSE(response->at("message").asString().empty())
            << line;
    }

    runtime::Engine engine_;
    ProtocolServer server_;
};

TEST_F(ProtocolTest, AppsListsEveryRegisteredApp)
{
    const JsonPtr response = roundTrip(R"({"op":"apps"})");
    EXPECT_TRUE(response->at("ok").boolean);
    const auto &apps_array = response->at("apps").asArray();
    ASSERT_EQ(apps_array.size(), apps::allApps().size());
    std::vector<std::string> names;
    for (const auto &item : apps_array)
        names.push_back(item->asString());
    for (const apps::AppKind kind : apps::allApps())
        EXPECT_NE(std::find(names.begin(), names.end(),
                            apps::appName(kind)),
                  names.end());
}

TEST_F(ProtocolTest, SubmitStepValuesCloseRoundTrip)
{
    const JsonPtr submit = roundTrip(
        R"({"op":"submit","app":"MobileRobot","seed":3})");
    ASSERT_TRUE(submit->at("ok").boolean);
    EXPECT_EQ(submit->at("op").asString(), "submit");
    EXPECT_EQ(submit->at("app").asString(), "MobileRobot");
    EXPECT_EQ(submit->at("fingerprint").asString().size(), 16u);
    const auto session =
        static_cast<std::uint64_t>(numberField(*submit, "session"));
    EXPECT_EQ(server_.openSessions(), 1u);
    EXPECT_EQ(engine_.stats().compiles, 1u);

    const JsonPtr step = roundTrip(
        R"({"op":"step","session":)" + std::to_string(session) +
        R"(,"frames":4})");
    ASSERT_TRUE(step->at("ok").boolean);
    EXPECT_EQ(numberField(*step, "frames"), 4.0);
    EXPECT_EQ(numberField(*step, "total_frames"), 4.0);
    EXPECT_GT(numberField(*step, "cycles"), 0.0);
    // The objective is a finite number (17-digit doubles, not null).
    EXPECT_TRUE(std::isfinite(numberField(*step, "objective")));

    // Two identical values queries are byte-identical: state only
    // moves on step.
    const std::string values_request =
        R"({"op":"values","session":)" + std::to_string(session) + "}";
    const std::string first = server_.handle(values_request);
    EXPECT_EQ(first, server_.handle(values_request));
    const JsonPtr values = parseJson(first);
    ASSERT_TRUE(values->at("ok").boolean);
    EXPECT_FALSE(values->at("values").asObject().empty());
    for (const auto &[key, value] : values->at("values").asObject()) {
        // Poses serialize as {"phi":[..],"t":[..]}, vectors as [..].
        if (value->kind == test::JsonValue::Kind::Object) {
            EXPECT_FALSE(value->at("phi").asArray().empty()) << key;
            EXPECT_FALSE(value->at("t").asArray().empty()) << key;
        } else {
            EXPECT_FALSE(value->asArray().empty()) << key;
        }
    }

    const JsonPtr close = roundTrip(
        R"({"op":"close","session":)" + std::to_string(session) + "}");
    EXPECT_TRUE(close->at("ok").boolean);
    EXPECT_EQ(server_.openSessions(), 0u);
    // The session is gone: further use reports unknown_session.
    expectError(R"({"op":"step","session":)" +
                    std::to_string(session) + "}",
                "unknown_session");
    EXPECT_EQ(server_.requests(), 6u);
    EXPECT_EQ(server_.errors(), 1u);
}

TEST_F(ProtocolTest, SecondSubmitOfSameGraphHitsTheCache)
{
    const JsonPtr first = roundTrip(
        R"({"op":"submit","app":"Quadrotor","seed":9})");
    const JsonPtr second = roundTrip(
        R"({"op":"submit","app":"Quadrotor","seed":9})");
    ASSERT_TRUE(first->at("ok").boolean);
    ASSERT_TRUE(second->at("ok").boolean);
    EXPECT_EQ(first->at("fingerprint").asString(),
              second->at("fingerprint").asString());
    EXPECT_NE(numberField(*first, "session"),
              numberField(*second, "session"));
    EXPECT_EQ(engine_.stats().compiles, 1u);
    EXPECT_EQ(engine_.stats().cacheHits, 1u);
}

TEST_F(ProtocolTest, ExplicitAlgorithmSelectionWorks)
{
    // Every app's first algorithm can also be requested by name.
    for (const apps::AppKind kind : apps::allApps()) {
        const apps::BenchmarkApp app = apps::buildApp(kind, 1);
        const std::string name = app.app.algorithm(0).name;
        const JsonPtr response = roundTrip(
            R"({"op":"submit","app":")" +
            std::string(apps::appName(kind)) + R"(","algorithm":")" +
            name + R"("})");
        EXPECT_TRUE(response->at("ok").boolean)
            << apps::appName(kind) << "/" << name;
    }
}

TEST_F(ProtocolTest, UnknownFieldsAreIgnoredEverywhere)
{
    // Schema tolerance: decorated requests behave like bare ones.
    const JsonPtr submit = roundTrip(
        R"({"op":"submit","app":"Manipulator","client":"t",)"
        R"("retry":3,"nested":{"deep":[1,2]},"seed":2})");
    ASSERT_TRUE(submit->at("ok").boolean);
    const auto session =
        static_cast<std::uint64_t>(numberField(*submit, "session"));
    const JsonPtr step = roundTrip(
        R"({"op":"step","session":)" + std::to_string(session) +
        R"(,"frames":1,"deadline_hint":99.5,"tags":["a"]})");
    EXPECT_TRUE(step->at("ok").boolean);
    EXPECT_EQ(server_.errors(), 0u);
}

TEST_F(ProtocolTest, MalformedRequestTableMapsToTypedErrors)
{
    const struct
    {
        const char *line;
        const char *error;
    } table[] = {
        {"{not json", "parse_error"},
        {"[1,2,3]", "bad_request"},
        {"\"just a string\"", "bad_request"},
        {"42", "bad_request"},
        {R"({"app":"MobileRobot"})", "missing_field"}, // No op.
        {R"({"op":17})", "bad_type"},
        {R"({"op":"warp"})", "unknown_op"},
        {R"({"op":"submit"})", "missing_field"}, // No app.
        {R"({"op":"submit","app":7})", "bad_type"},
        {R"({"op":"submit","app":"NoSuchApp"})", "unknown_app"},
        {R"({"op":"submit","app":"MobileRobot","algorithm":"x"})",
         "unknown_algorithm"},
        {R"({"op":"submit","app":"MobileRobot","seed":-1})",
         "bad_value"},
        {R"({"op":"submit","app":"MobileRobot","seed":1.5})",
         "bad_value"},
        {R"({"op":"step"})", "missing_field"}, // No session.
        {R"({"op":"step","session":"one"})", "bad_type"},
        {R"({"op":"step","session":404})", "unknown_session"},
        {R"({"op":"values","session":404})", "unknown_session"},
        {R"({"op":"close","session":404})", "unknown_session"},
    };
    std::uint64_t expected_errors = 0;
    for (const auto &row : table) {
        expectError(row.line, row.error);
        EXPECT_EQ(server_.errors(), ++expected_errors) << row.line;
    }
    // Frame-count bounds: zero, negative and absurd all reject.
    const JsonPtr submit = roundTrip(
        R"({"op":"submit","app":"MobileRobot"})");
    ASSERT_TRUE(submit->at("ok").boolean);
    const std::string id = std::to_string(
        static_cast<std::uint64_t>(numberField(*submit, "session")));
    for (const char *frames : {"0", "-3", "100001", "2.5"})
        expectError(R"({"op":"step","session":)" + id +
                        R"(,"frames":)" + frames + "}",
                    "bad_value");
    // The session survived all that abuse.
    EXPECT_TRUE(roundTrip(R"({"op":"step","session":)" + id + "}")
                    ->at("ok")
                    .boolean);
    EXPECT_EQ(server_.openSessions(), 1u);
}

TEST_F(ProtocolTest, OversizedRequestsAreRefusedUnparsed)
{
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    ProtocolOptions options;
    options.maxRequestBytes = 64;
    ProtocolServer small(engine, options);
    const std::string big =
        R"({"op":"apps","padding":")" + std::string(128, 'x') + R"("})";
    const JsonPtr response = parseJson(small.handle(big));
    EXPECT_FALSE(response->at("ok").boolean);
    EXPECT_EQ(response->at("error").asString(), "oversized");
    // At the limit itself the request is still served.
    EXPECT_TRUE(
        parseJson(small.handle(R"({"op":"metrics"})"))->at("ok")
            .boolean);
}

TEST_F(ProtocolTest, MetricsAndHealthEmbedEngineState)
{
    // The metrics registry is process-global and registers counters
    // lazily, so read the starting value tolerantly (the counter may
    // not exist before the first compile of the process).
    const JsonPtr before = roundTrip(R"({"op":"metrics"})");
    const auto &counters_before =
        before->at("metrics").at("counters");
    const double compiles_before =
        counters_before.has("engine.compiles")
            ? counters_before.at("engine.compiles").asNumber()
            : 0.0;
    roundTrip(R"({"op":"submit","app":"AutoVehicle"})");
    const JsonPtr health = roundTrip(R"({"op":"health"})");
    ASSERT_TRUE(health->at("ok").boolean);
    const auto &engine_health = health->at("health");
    EXPECT_EQ(engine_health.at("status").asString(), "ok");
    // No storeDir configured: the persistent tier reports disarmed.
    EXPECT_FALSE(engine_health.at("store").boolean);
    EXPECT_EQ(numberField(engine_health, "compiles"), 1.0);
    EXPECT_EQ(numberField(engine_health, "store_hits"), 0.0);

    const JsonPtr metrics = roundTrip(R"({"op":"metrics"})");
    ASSERT_TRUE(metrics->at("ok").boolean);
    // Counter deltas are only observable when instrumentation is
    // compiled in (the export self-reports via "compiled").
    if (metrics->at("metrics").at("compiled").boolean)
        EXPECT_EQ(test::counterValue(metrics->at("metrics"),
                                     "engine.compiles"),
                  compiles_before + 1.0);
}

TEST_F(ProtocolTest, SubmitReportsAndAssertsPrecision)
{
    // The submit response always carries the engine's datapath.
    const JsonPtr plain = roundTrip(
        R"({"op":"submit","app":"MobileRobot"})");
    ASSERT_TRUE(plain->at("ok").boolean);
    EXPECT_EQ(plain->at("precision").asString(), "fp64");

    // A matching assertion is accepted ("double" is an alias)...
    const JsonPtr asserted = roundTrip(
        R"({"op":"submit","app":"MobileRobot","precision":"double"})");
    EXPECT_TRUE(asserted->at("ok").boolean);

    // ...a well-formed mismatch is a typed error, a malformed value a
    // bad_value — neither opens a session.
    const std::size_t open = server_.openSessions();
    expectError(
        R"({"op":"submit","app":"MobileRobot","precision":"fp32"})",
        "precision_mismatch");
    expectError(
        R"({"op":"submit","app":"MobileRobot","precision":"fp16"})",
        "bad_value");
    EXPECT_EQ(server_.openSessions(), open);

    // Health advertises the same datapath the submits asserted on.
    const JsonPtr health = roundTrip(R"({"op":"health"})");
    EXPECT_EQ(health->at("health").at("precision").asString(),
              "fp64");

    // And symmetrically for an fp32 engine's server.
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp32;
    runtime::Engine engine32(hw::AcceleratorConfig::minimal(true),
                             options);
    ProtocolServer server32(engine32);
    registerApps(server32);
    const JsonPtr narrow = parseJson(server32.handle(
        R"({"op":"submit","app":"MobileRobot","precision":"fp32"})"));
    ASSERT_TRUE(narrow->at("ok").boolean);
    EXPECT_EQ(narrow->at("precision").asString(), "fp32");
    const JsonPtr wide = parseJson(server32.handle(
        R"({"op":"submit","app":"MobileRobot","precision":"fp64"})"));
    EXPECT_FALSE(wide->at("ok").boolean);
    EXPECT_EQ(wide->at("error").asString(), "precision_mismatch");
}

TEST_F(ProtocolTest, TenantTagsAttributeSessionsStepsAndRejects)
{
    // Untagged traffic leaves the tenant map empty.
    const JsonPtr none = roundTrip(R"({"op":"health"})");
    EXPECT_TRUE(none->at("tenants").asObject().empty());

    const JsonPtr a1 = roundTrip(
        R"({"op":"submit","app":"MobileRobot","tenant":"alice"})");
    ASSERT_TRUE(a1->at("ok").boolean);
    const std::string a_session = std::to_string(
        static_cast<std::uint64_t>(numberField(*a1, "session")));
    roundTrip(R"({"op":"submit","app":"Quadrotor","tenant":"bob"})");

    // alice steps 3 frames; bob's second submit is rejected.
    EXPECT_TRUE(roundTrip(R"({"op":"step","session":)" + a_session +
                          R"(,"frames":3})")
                    ->at("ok")
                    .boolean);
    expectError(
        R"({"op":"submit","app":"NoSuchApp","tenant":"bob"})",
        "unknown_app");

    for (const char *op : {"health", "metrics"}) {
        const JsonPtr snap = roundTrip(
            std::string("{\"op\":\"") + op + "\"}");
        ASSERT_TRUE(snap->at("ok").boolean) << op;
        const auto &tenants = snap->at("tenants");
        EXPECT_EQ(numberField(tenants.at("alice"), "sessions"), 1.0);
        EXPECT_EQ(numberField(tenants.at("alice"), "steps"), 3.0);
        EXPECT_EQ(numberField(tenants.at("alice"), "rejects"), 0.0);
        EXPECT_EQ(numberField(tenants.at("bob"), "sessions"), 1.0);
        EXPECT_EQ(numberField(tenants.at("bob"), "steps"), 0.0);
        EXPECT_EQ(numberField(tenants.at("bob"), "rejects"), 1.0);
    }

    // An untagged submit still goes uncounted alongside tagged ones.
    roundTrip(R"({"op":"submit","app":"MobileRobot","seed":8})");
    const JsonPtr after = roundTrip(R"({"op":"health"})");
    EXPECT_EQ(after->at("tenants").asObject().size(), 2u);
}

} // namespace
