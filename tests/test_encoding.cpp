// Tests for the binary program encoding: round-trip fidelity and
// functional equivalence of decoded programs.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/encoding.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using comp::Program;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Vector;

/** A graph touching every payload kind: camera, SDF, hinge, MV. */
FactorGraph
richGraph(Values &values, std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();

    Pose pose = randomPose(3, rng, 0.2, 1.0);
    values.insert(1, pose);
    Vector landmark = pose.rotation() * Vector{0.2, -0.1, 3.0} +
                      pose.t();
    values.insert(2, landmark);
    graph.emplace<fg::CameraFactor>(
        1, 2, Vector{3.0, -2.0}, fg::CameraModel{420, 420, 320, 240},
        fg::isotropicSigmas(2, 1.0));
    // A 3-D landmark needs more than one 2-row observation.
    graph.emplace<fg::VectorPriorFactor>(2, landmark,
                                         fg::isotropicSigmas(3, 1.0));
    graph.emplace<fg::PriorFactor>(1, Pose::identity(3),
                                   fg::isotropicSigmas(6, 0.1));
    graph.emplace<fg::GPSFactor>(1, Vector{0.1, 0.2, 0.3},
                                 fg::isotropicSigmas(3, 0.5));

    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{1.0, 1.0}, 0.5);
    map->addObstacle(Vector{-2.0, 0.5}, 0.8);
    values.insert(3, Vector{0.9, 0.8, 0.1, 0.2});
    graph.emplace<fg::CollisionFreeFactor>(3, map, 4, 2, 0.7, 0.2);
    graph.emplace<fg::KinematicsFactor>(3, 4, 2, 2, 1.0, 0.5);
    graph.emplace<fg::VectorPriorFactor>(3, Vector(4),
                                         fg::isotropicSigmas(4, 1.0));
    return graph;
}

TEST(Encoding, RoundTripPreservesStructure)
{
    std::mt19937 rng(61);
    Values values;
    FactorGraph graph = richGraph(values, rng);
    const Program original = comp::compileGraph(graph, values);

    const auto bytes = comp::encodeProgram(original);
    EXPECT_GT(bytes.size(), 1000u);
    const Program decoded = comp::decodeProgram(bytes);

    EXPECT_EQ(decoded.name, original.name);
    EXPECT_EQ(decoded.valueSlots, original.valueSlots);
    EXPECT_EQ(decoded.algorithm, original.algorithm);
    ASSERT_EQ(decoded.instructions.size(),
              original.instructions.size());
    ASSERT_EQ(decoded.deltas.size(), original.deltas.size());
    for (std::size_t i = 0; i < original.instructions.size(); ++i) {
        const auto &a = original.instructions[i];
        const auto &b = decoded.instructions[i];
        EXPECT_EQ(a.op, b.op) << i;
        EXPECT_EQ(a.srcs, b.srcs) << i;
        EXPECT_EQ(a.deps, b.deps) << i;
        EXPECT_EQ(a.dst, b.dst) << i;
        EXPECT_EQ(a.rows, b.rows) << i;
        EXPECT_EQ(a.cols, b.cols) << i;
        EXPECT_EQ(a.phase, b.phase) << i;
        EXPECT_EQ(a.extractVector, b.extractVector) << i;
        EXPECT_EQ(a.placements.size(), b.placements.size()) << i;
    }
}

TEST(Encoding, DecodedProgramExecutesIdentically)
{
    std::mt19937 rng(62);
    Values values;
    FactorGraph graph = richGraph(values, rng);
    const Program original = comp::compileGraph(graph, values);
    const Program decoded =
        comp::decodeProgram(comp::encodeProgram(original));

    comp::Executor exec_a(original);
    comp::Executor exec_b(decoded);
    const auto da = exec_a.run(values);
    const auto db = exec_b.run(values);
    ASSERT_EQ(da.size(), db.size());
    for (const auto &[key, delta] : da)
        EXPECT_LT(mat::maxDifference(delta, db.at(key)), 1e-15);
}

TEST(Encoding, FileRoundTrip)
{
    std::mt19937 rng(63);
    Values values;
    FactorGraph graph = richGraph(values, rng);
    const Program original = comp::compileGraph(graph, values);

    const std::string path = ::testing::TempDir() + "orianna.oprog";
    comp::saveProgram(path, original);
    const Program loaded = comp::loadProgram(path);
    EXPECT_EQ(loaded.instructions.size(),
              original.instructions.size());
    EXPECT_THROW(comp::loadProgram("/nonexistent/x.oprog"),
                 std::runtime_error);
}

TEST(Encoding, CorruptInputsRejected)
{
    std::mt19937 rng(64);
    Values values;
    FactorGraph graph = richGraph(values, rng);
    auto bytes = comp::encodeProgram(comp::compileGraph(graph, values));

    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(comp::decodeProgram(bad_magic), std::runtime_error);
    // Bad version.
    auto bad_version = bytes;
    bad_version[4] = 0x7f;
    EXPECT_THROW(comp::decodeProgram(bad_version), std::runtime_error);
    // Truncation at every granularity.
    for (std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                            bytes.size() - 3}) {
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() + cut);
        EXPECT_THROW(comp::decodeProgram(truncated),
                     std::runtime_error);
    }
    // Trailing junk.
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_THROW(comp::decodeProgram(padded), std::runtime_error);
}

} // namespace
