// Tests for the Application API, the four Tbl. 4 benchmark
// applications, and the sphere validation benchmark of Sec. 4.3.

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "apps/sphere.hpp"
#include "matrix/mac_counter.hpp"

namespace {

using namespace orianna;
using apps::AppKind;
using apps::BenchmarkApp;
using hw::AcceleratorConfig;

TEST(Application, RegistrationAndCompile)
{
    BenchmarkApp bench = apps::buildMobileRobot(1);
    core::Application &app = bench.app;
    EXPECT_EQ(app.size(), 3u);
    EXPECT_NE(app.find("localization"), nullptr);
    EXPECT_NE(app.find("planning"), nullptr);
    EXPECT_NE(app.find("control"), nullptr);
    EXPECT_EQ(app.find("nonsense"), nullptr);

    const auto work = app.frameWork();
    ASSERT_EQ(work.size(), 3u);
    // Algorithm tags are distinct (coarse-grained OoO labels).
    EXPECT_EQ(work[0].program->algorithm, 0);
    EXPECT_EQ(work[1].program->algorithm, 1);
    EXPECT_EQ(work[2].program->algorithm, 2);
    for (const auto &item : work)
        EXPECT_GT(item.program->instructions.size(), 50u);

    // Dense (VANILLA-HLS) variants exist and are bigger in QR shape.
    const auto dense = app.denseFrameWork();
    ASSERT_EQ(dense.size(), 3u);
}

TEST(Application, BadRateRejected)
{
    core::Application app("x");
    EXPECT_THROW(app.add("a", fg::FactorGraph{}, fg::Values{}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(app.frameWork(), std::logic_error);
}

class AllAppsSolve : public ::testing::TestWithParam<AppKind>
{};

TEST_P(AllAppsSolve, SoftwareMissionSucceeds)
{
    BenchmarkApp bench = apps::buildApp(GetParam(), 7);
    const auto solved = bench.app.solveSoftware();
    EXPECT_TRUE(bench.success(solved))
        << apps::appName(GetParam()) << " software mission failed";
}

TEST_P(AllAppsSolve, AcceleratorMatchesSoftwareMission)
{
    // The Tbl. 5 property: identical missions succeed or fail the
    // same way on the software path and on the simulated accelerator.
    BenchmarkApp bench = apps::buildApp(GetParam(), 11);
    const auto sw = bench.app.solveSoftware();
    const auto hw_solved = bench.app.solveAccelerated(
        AcceleratorConfig::minimal(true), 15);
    EXPECT_EQ(bench.success(sw), bench.success(hw_solved))
        << apps::appName(GetParam());
}

TEST_P(AllAppsSolve, DimensionsMatchTable4)
{
    BenchmarkApp bench = apps::buildApp(GetParam(), 3);
    const core::Application &app = bench.app;
    const fg::Values &loc = app.algorithm(0).values;
    const fg::Values &plan = app.algorithm(1).values;

    std::size_t loc_dim = 0;
    for (fg::Key key : loc.keys()) {
        if (loc.isPose(key)) {
            loc_dim = loc.pose(key).dof();
            break;
        }
        loc_dim = loc.vector(key).size();
        break;
    }
    std::size_t plan_dim = plan.dof(plan.keys().front());

    switch (GetParam()) {
      case AppKind::MobileRobot:
        EXPECT_EQ(loc_dim, 3u);
        EXPECT_EQ(plan_dim, 6u);
        break;
      case AppKind::Manipulator:
        EXPECT_EQ(loc_dim, 2u);
        EXPECT_EQ(plan_dim, 4u);
        break;
      case AppKind::AutoVehicle:
        EXPECT_EQ(loc_dim, 3u);
        EXPECT_EQ(plan_dim, 6u);
        break;
      case AppKind::Quadrotor:
        EXPECT_EQ(loc_dim, 6u);
        EXPECT_EQ(plan_dim, 12u);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AllAppsSolve,
    ::testing::ValuesIn(apps::allApps()),
    [](const ::testing::TestParamInfo<AppKind> &info) {
        return apps::appName(info.param);
    });

// --- Sphere benchmark -------------------------------------------------------

TEST(Sphere, DatasetShape)
{
    auto data = apps::makeSphere(6, 12, 10.0, 1);
    EXPECT_EQ(data.truth.size(), 72u);
    EXPECT_EQ(data.initial.size(), 72u);
    // Odometry (n-1) plus loop closures (n - per_ring).
    EXPECT_EQ(data.edges.size(), 71u + 60u);
    // Dead reckoning drifts away from the truth.
    const auto initial_ate = apps::computeAte(data.initial, data.truth);
    EXPECT_GT(initial_ate.max, 0.1);
}

TEST(Sphere, UnifiedOptimizationRecoversTrajectory)
{
    auto data = apps::makeSphere(6, 12, 10.0, 2, 0.002, 0.01);
    const auto optimized = apps::optimizeSphereUnified(data);
    const auto ate = apps::computeAte(optimized, data.truth);
    const auto initial_ate = apps::computeAte(data.initial, data.truth);
    EXPECT_LT(ate.mean, initial_ate.mean / 3.0);
    EXPECT_LT(ate.mean, 0.06);
}

TEST(Sphere, Se3MatchesUnifiedAccuracy)
{
    // Tbl. 1: both representations reach the same accuracy.
    auto data = apps::makeSphere(5, 10, 10.0, 3);
    const auto unified = apps::optimizeSphereUnified(data);
    const auto se3 = apps::optimizeSphereSe3(data);
    const auto ate_unified = apps::computeAte(unified, data.truth);
    const auto ate_se3 = apps::computeAte(se3, data.truth);
    EXPECT_NEAR(ate_unified.mean, ate_se3.mean,
                0.25 * std::max(ate_unified.mean, ate_se3.mean) + 0.01);
}

TEST(Sphere, UnifiedSavesMacs)
{
    // The Sec. 4.3 efficiency claim, measured end to end.
    auto data = apps::makeSphere(4, 8, 10.0, 4);

    mat::MacCounter::reset();
    (void)apps::optimizeSphereUnified(data, 5);
    const std::uint64_t unified_macs = mat::MacCounter::value();

    mat::MacCounter::reset();
    (void)apps::optimizeSphereSe3(data, 5);
    const std::uint64_t se3_macs = mat::MacCounter::value();

    EXPECT_GT(unified_macs, 0u);
    EXPECT_GT(se3_macs, unified_macs);
}

} // namespace
