// Persistent program store tests (DESIGN.md §11): encoding
// round-trip fuzzing across container versions, the corruption
// validation ladder (every single-byte flip, truncation, stale
// versions, wrong pass spec, foreign fingerprint — each a clean miss,
// never a crash or a wrong program), the atomic-publish contract, and
// the Engine's warm-restart / corrupted-store behavior end to end.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/encoding.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "runtime/engine.hpp"
#include "runtime/program_store.hpp"
#include "test_fg_common.hpp"

namespace {

namespace fs = std::filesystem;

using namespace orianna;
using orianna::test::randomPose;
using comp::Program;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Vector;
using runtime::ProgramStore;

/** A graph touching every payload kind: camera, SDF, hinge, MV. */
FactorGraph
richGraph(Values &values, std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();

    Pose pose = randomPose(3, rng, 0.2, 1.0);
    values.insert(1, pose);
    Vector landmark =
        pose.rotation() * Vector{0.2, -0.1, 3.0} + pose.t();
    values.insert(2, landmark);
    graph.emplace<fg::CameraFactor>(
        1, 2, Vector{3.0, -2.0}, fg::CameraModel{420, 420, 320, 240},
        fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::VectorPriorFactor>(2, landmark,
                                         fg::isotropicSigmas(3, 1.0));
    graph.emplace<fg::PriorFactor>(1, Pose::identity(3),
                                   fg::isotropicSigmas(6, 0.1));

    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{1.0, 1.0}, 0.5);
    map->addObstacle(Vector{-2.0, 0.5}, 0.8);
    values.insert(3, Vector{0.9, 0.8, 0.1, 0.2});
    graph.emplace<fg::CollisionFreeFactor>(3, map, 4, 2, 0.7, 0.2);
    graph.emplace<fg::KinematicsFactor>(3, 4, 2, 2, 1.0, 0.5);
    graph.emplace<fg::VectorPriorFactor>(3, Vector(4),
                                         fg::isotropicSigmas(4, 1.0));
    return graph;
}

/** A pose chain of randomized length/poses: the fuzzing workload. */
FactorGraph
randomChain(Values &values, std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();
    const std::size_t n =
        2 + std::uniform_int_distribution<std::size_t>(0, 4)(rng);
    std::vector<Pose> poses;
    for (std::size_t i = 0; i < n; ++i) {
        poses.push_back(randomPose(3, rng, 0.1, 0.5));
        values.insert(i + 1, poses.back());
    }
    graph.emplace<fg::PriorFactor>(1, poses[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < n; ++i)
        graph.emplace<fg::IMUFactor>(i, i + 1,
                                     poses[i].ominus(poses[i - 1]),
                                     fg::isotropicSigmas(6, 0.05));
    return graph;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        testing::TempDir() + "orianna_store_" + name;
    fs::remove_all(dir);
    return dir;
}

/** Exact (bitwise) equality of two value sets. */
void
expectIdenticalValues(const Values &a, const Values &b)
{
    ASSERT_EQ(a.keys().size(), b.keys().size());
    for (fg::Key key : a.keys()) {
        if (a.isPose(key)) {
            EXPECT_EQ(mat::maxDifference(a.pose(key).phi(),
                                         b.pose(key).phi()),
                      0.0)
                << key;
            EXPECT_EQ(
                mat::maxDifference(a.pose(key).t(), b.pose(key).t()),
                0.0)
                << key;
        } else {
            EXPECT_EQ(mat::maxDifference(a.vector(key), b.vector(key)),
                      0.0)
                << key;
        }
    }
}

// --- Encoding round-trip fuzz ---------------------------------------

TEST(EncodingFuzz, RandomProgramsRoundTripBitIdentically)
{
    // encode(decode(bytes)) == bytes across many randomized programs:
    // the encoder is canonical, so a decode that loses or reorders
    // anything shows up as a byte diff, not just a behavioral one.
    std::mt19937 rng(20240807);
    for (int round = 0; round < 12; ++round) {
        Values values;
        FactorGraph graph = (round % 3 == 0)
                                ? richGraph(values, rng)
                                : randomChain(values, rng);
        const Program original = comp::compileGraph(graph, values);
        const auto bytes = comp::encodeProgram(original);
        const Program decoded = comp::decodeProgram(bytes);
        EXPECT_EQ(comp::encodeProgram(decoded), bytes)
            << "round " << round;
    }
}

TEST(EncodingFuzz, VersionOneStreamsDecodeIdentically)
{
    // The v1 container layout is byte-identical to v2 (v2 only added
    // opcodes), and v3 only appended the precision tag after the
    // algorithm byte — so a v3 stream without fused instructions,
    // re-stamped as v1 with the tag stripped, must decode to the very
    // same (Fp64) program.
    ASSERT_GE(comp::encodingVersion(), 3u);
    ASSERT_EQ(comp::minEncodingVersion(), 1u);
    std::mt19937 rng(7);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    // No pass pipeline: raw codegen output has no fused (v2) opcodes.
    const Program original = comp::compileGraph(graph, values);
    auto bytes = comp::encodeProgram(original);
    ASSERT_EQ(bytes[4], 3); // Version field, little-endian.
    // Layout: magic(4) version(4) name(4+len) algorithm(1) precision(1).
    const std::uint32_t name_len =
        static_cast<std::uint32_t>(bytes[8]) |
        static_cast<std::uint32_t>(bytes[9]) << 8 |
        static_cast<std::uint32_t>(bytes[10]) << 16 |
        static_cast<std::uint32_t>(bytes[11]) << 24;
    const std::size_t precision_at = 12 + name_len + 1;
    ASSERT_EQ(bytes.at(precision_at), 0); // Fp64 tag.
    auto v1 = bytes;
    v1.erase(v1.begin() + static_cast<std::ptrdiff_t>(precision_at));
    v1[4] = 1;
    const Program decoded = comp::decodeProgram(v1);
    EXPECT_EQ(decoded.precision, comp::Precision::Fp64);
    // Canonical re-encode equals the v3 stream bit for bit.
    EXPECT_EQ(comp::encodeProgram(decoded), bytes);

    comp::Executor exec_a(original);
    comp::Executor exec_b(decoded);
    const auto da = exec_a.run(values);
    const auto db = exec_b.run(values);
    ASSERT_EQ(da.size(), db.size());
    for (const auto &[key, delta] : da)
        EXPECT_EQ(mat::maxDifference(delta, db.at(key)), 0.0);
}

TEST(EncodingFuzz, PrecisionTagRoundTripsAndRejectsBadValues)
{
    std::mt19937 rng(9);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    comp::CompileOptions options;
    options.precision = comp::Precision::Fp32;
    Program program = comp::compileGraph(graph, values, options);
    ASSERT_EQ(program.precision, comp::Precision::Fp32);

    auto bytes = comp::encodeProgram(program);
    const Program decoded = comp::decodeProgram(bytes);
    EXPECT_EQ(decoded.precision, comp::Precision::Fp32);
    EXPECT_EQ(comp::encodeProgram(decoded), bytes);

    // Locate and corrupt the precision byte: decoding must throw, not
    // fabricate a precision.
    const std::uint32_t name_len =
        static_cast<std::uint32_t>(bytes[8]) |
        static_cast<std::uint32_t>(bytes[9]) << 8 |
        static_cast<std::uint32_t>(bytes[10]) << 16 |
        static_cast<std::uint32_t>(bytes[11]) << 24;
    const std::size_t precision_at = 12 + name_len + 1;
    ASSERT_EQ(bytes.at(precision_at), 1); // Fp32 tag.
    bytes[precision_at] = 0x7f;
    EXPECT_THROW(comp::decodeProgram(bytes), std::runtime_error);
}

// --- Store round trip and validation ladder -------------------------

TEST(ProgramStore, StoreAndLoadRoundTrip)
{
    const std::string dir = freshDir("roundtrip");
    ProgramStore store(dir);
    ASSERT_TRUE(store.available());

    std::mt19937 rng(11);
    Values values;
    FactorGraph graph = richGraph(values, rng);
    const Program original = comp::compileGraph(graph, values);

    EXPECT_EQ(store.load(0x1234, "default"), nullptr); // Cold.
    ASSERT_TRUE(store.store(0x1234, "default", original));
    const auto loaded = store.load(0x1234, "default");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(comp::encodeProgram(*loaded),
              comp::encodeProgram(original));

    const auto stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.writeFailures, 0u);
}

TEST(ProgramStore, EverySingleByteCorruptionIsACleanMiss)
{
    const std::string dir = freshDir("corrupt");
    ProgramStore store(dir);
    std::mt19937 rng(12);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    const Program program = comp::compileGraph(graph, values);
    ASSERT_TRUE(store.store(0xabcd, "default", program));

    const std::string path = store.entryPath(0xabcd);
    std::vector<char> pristine;
    {
        std::ifstream in(path, std::ios::binary);
        pristine.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    ASSERT_GT(pristine.size(), 0u);

    // Flip every byte in turn. The header rungs catch the first 40-ish
    // bytes, the pass-spec comparison the next few, and the FNV-1a
    // checksum every byte of the payload — so each mutation must come
    // back as a miss (nullptr), never a crash or a wrong program.
    for (std::size_t i = 0; i < pristine.size(); ++i) {
        auto corrupted = pristine;
        corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5a);
        {
            std::ofstream out(path, std::ios::binary);
            out.write(corrupted.data(),
                      static_cast<std::streamsize>(corrupted.size()));
        }
        EXPECT_EQ(store.load(0xabcd, "default"), nullptr)
            << "flip at byte " << i;
    }
    EXPECT_EQ(store.stats().rejected, pristine.size());

    // Restore the pristine bytes: loads work again.
    {
        std::ofstream out(path, std::ios::binary);
        out.write(pristine.data(),
                  static_cast<std::streamsize>(pristine.size()));
    }
    EXPECT_NE(store.load(0xabcd, "default"), nullptr);
}

TEST(ProgramStore, TruncationsAreCleanMisses)
{
    const std::string dir = freshDir("truncate");
    ProgramStore store(dir);
    std::mt19937 rng(13);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    ASSERT_TRUE(store.store(0x77, "default",
                            comp::compileGraph(graph, values)));

    const std::string path = store.entryPath(0x77);
    std::vector<char> pristine;
    {
        std::ifstream in(path, std::ios::binary);
        pristine.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    for (std::size_t cut = 0; cut < pristine.size();
         cut += 7) { // Every 7th prefix keeps the sweep fast.
        std::ofstream out(path, std::ios::binary);
        out.write(pristine.data(), static_cast<std::streamsize>(cut));
        out.close();
        EXPECT_EQ(store.load(0x77, "default"), nullptr)
            << "truncated to " << cut;
    }
}

TEST(ProgramStore, StaleVersionsWrongSpecAndForeignFingerprintMiss)
{
    const std::string dir = freshDir("stale");
    ProgramStore store(dir);
    std::mt19937 rng(14);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    const Program program = comp::compileGraph(graph, values);
    ASSERT_TRUE(store.store(0x99, "default", program));

    // Wrong pass spec: the stored artifact was built by a different
    // pipeline, so it must not be served.
    EXPECT_EQ(store.load(0x99, "none"), nullptr);
    EXPECT_NE(store.load(0x99, "default"), nullptr);

    // Foreign fingerprint: copy the entry under another key's name;
    // the fingerprint echo in the header rejects it.
    fs::copy_file(store.entryPath(0x99), store.entryPath(0xdead));
    EXPECT_EQ(store.load(0xdead, "default"), nullptr);

    const std::string path = store.entryPath(0x99);
    std::vector<char> pristine;
    {
        std::ifstream in(path, std::ios::binary);
        pristine.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    // Stale store version (bytes 4..7) and out-of-range encoding
    // version (bytes 8..11) are both validation-ladder rungs.
    for (const std::size_t offset : {std::size_t{4}, std::size_t{8}}) {
        auto stale = pristine;
        stale[offset] = 0x7f;
        std::ofstream out(path, std::ios::binary);
        out.write(stale.data(),
                  static_cast<std::streamsize>(stale.size()));
        out.close();
        EXPECT_EQ(store.load(0x99, "default"), nullptr)
            << "version field at " << offset;
    }
}

TEST(ProgramStore, PublishesAtomicallyAndSweepsOrphanedTemps)
{
    const std::string dir = freshDir("atomic");
    {
        ProgramStore store(dir);
        std::mt19937 rng(15);
        Values values;
        FactorGraph graph = randomChain(values, rng);
        ASSERT_TRUE(store.store(0x1, "default",
                                comp::compileGraph(graph, values)));
        // After a publish no temp file remains: rename either moved it
        // or the failure path unlinked it.
        for (const auto &item : fs::directory_iterator(dir))
            EXPECT_EQ(item.path().filename().string().rfind(".tmp.", 0),
                      std::string::npos)
                << item.path();
    }
    // A temp file orphaned by a killed writer is swept on the next
    // construction and is never visible to load().
    const std::string orphan = dir + "/.tmp.999.0.junk";
    std::ofstream(orphan, std::ios::binary) << "partial";
    ProgramStore reopened(dir);
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_NE(reopened.load(0x1, "default"), nullptr);
}

TEST(ProgramStore, UnusableDirectoryIsPermanentlyColdNotFatal)
{
    // A path under a regular file cannot become a directory.
    const std::string blocker = freshDir("blocker");
    std::ofstream(blocker, std::ios::binary) << "x";
    ProgramStore store(blocker + "/sub");
    EXPECT_FALSE(store.available());

    std::mt19937 rng(16);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    const Program program = comp::compileGraph(graph, values);
    EXPECT_EQ(store.load(0x5, "default"), nullptr);
    EXPECT_FALSE(store.store(0x5, "default", program));
    EXPECT_EQ(store.stats().writeFailures, 1u);

    // An Engine over the broken store keeps serving (compiles).
    // Pinned fp64: one compile exactly (no fp32 reference fallback).
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp64;
    options.storeDir = blocker + "/sub";
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    runtime::Session session = engine.session(graph, values);
    session.iterate(2);
    EXPECT_EQ(engine.stats().compiles, 1u);
    EXPECT_EQ(engine.stats().storeHits, 0u);
}

// --- Fingerprint stability ------------------------------------------

TEST(ProgramStore, SdfFingerprintHashesContentNotIdentity)
{
    // Two distinct SdfMap objects with identical obstacles must give
    // one fingerprint (it doubles as the cross-process store key);
    // different obstacle sets must not.
    const auto buildGraph = [](const std::shared_ptr<fg::SdfMap> &map,
                               Values &values) {
        FactorGraph graph;
        values = Values();
        values.insert(3, Vector{0.9, 0.8, 0.1, 0.2});
        graph.emplace<fg::CollisionFreeFactor>(3, map, 4, 2, 0.7, 0.2);
        graph.emplace<fg::VectorPriorFactor>(
            3, Vector(4), fg::isotropicSigmas(4, 1.0));
        return graph;
    };
    auto map_a = std::make_shared<fg::SdfMap>();
    map_a->addObstacle(Vector{1.0, 1.0}, 0.5);
    auto map_b = std::make_shared<fg::SdfMap>();
    map_b->addObstacle(Vector{1.0, 1.0}, 0.5);
    auto map_c = std::make_shared<fg::SdfMap>();
    map_c->addObstacle(Vector{1.0, 1.0}, 0.75);

    Values va;
    Values vb;
    Values vc;
    const FactorGraph ga = buildGraph(map_a, va);
    const FactorGraph gb = buildGraph(map_b, vb);
    const FactorGraph gc = buildGraph(map_c, vc);
    EXPECT_EQ(runtime::graphFingerprint(ga, va),
              runtime::graphFingerprint(gb, vb));
    EXPECT_NE(runtime::graphFingerprint(ga, va),
              runtime::graphFingerprint(gc, vc));
}

// --- Engine integration: warm restart and degradation ---------------

TEST(ProgramStore, EngineWarmRestartServesWithZeroCompiles)
{
    const std::string dir = freshDir("warm");
    std::mt19937 rng(17);
    Values values;
    FactorGraph graph = richGraph(values, rng);

    // Pinned fp64: the exact entry/compile counts below are the
    // single-artifact contract (an fp32 engine adds the salted
    // program and the reference fallback — test_precision.cpp).
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp64;
    options.storeDir = dir;

    Values cold_result;
    {
        runtime::Engine cold(hw::AcceleratorConfig::minimal(true),
                             options);
        runtime::Session session = cold.session(graph, values);
        session.iterate(3);
        cold_result = session.values();
        EXPECT_EQ(cold.stats().compiles, 1u);
        EXPECT_EQ(cold.stats().storeMisses, 1u);
        EXPECT_EQ(cold.stats().storeWrites, 1u);
        EXPECT_EQ(cold.stats().storeHits, 0u);
    }
    {
        // "Restart": a fresh engine on the same directory serves the
        // program from disk — zero compiles, bit-identical values.
        runtime::Engine warm(hw::AcceleratorConfig::minimal(true),
                             options);
        runtime::Session session = warm.session(graph, values);
        session.iterate(3);
        EXPECT_EQ(warm.stats().compiles, 0u);
        EXPECT_EQ(warm.stats().storeHits, 1u);
        expectIdenticalValues(cold_result, session.values());
        // The compile log records compiles only: a store hit is not a
        // compile.
        EXPECT_TRUE(warm.compileLog().empty());
    }
}

TEST(ProgramStore, CorruptedEntryDegradesToByteIdenticalCompile)
{
    const std::string dir = freshDir("degrade");
    std::mt19937 rng(18);
    Values values;
    FactorGraph graph = richGraph(values, rng);

    // Ground truth: a store-less engine. Everything pins fp64 — the
    // corruption drill relies on exactly one entry in the directory.
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    Values baseline;
    {
        runtime::Engine plain(hw::AcceleratorConfig::minimal(true),
                              fp64);
        runtime::Session session = plain.session(graph, values);
        session.iterate(3);
        baseline = session.values();
    }

    runtime::EngineOptions options = fp64;
    options.storeDir = dir;
    {
        runtime::Engine cold(hw::AcceleratorConfig::minimal(true),
                             options);
        cold.session(graph, values); // Populate the store.
    }
    // Corrupt the one stored entry (payload byte, checksum-protected).
    std::string entry;
    for (const auto &item : fs::directory_iterator(dir))
        entry = item.path().string();
    ASSERT_FALSE(entry.empty());
    {
        std::fstream file(entry, std::ios::in | std::ios::out |
                                     std::ios::binary);
        file.seekp(-1, std::ios::end);
        file.put('\x5a');
    }
    {
        runtime::Engine degraded(hw::AcceleratorConfig::minimal(true),
                                 options);
        runtime::Session session = degraded.session(graph, values);
        session.iterate(3);
        // The poisoned entry was rejected, a normal compile happened,
        // and the values are byte-identical to the store-less run.
        EXPECT_EQ(degraded.stats().compiles, 1u);
        EXPECT_EQ(degraded.stats().storeHits, 0u);
        EXPECT_EQ(degraded.stats().storeMisses, 1u);
        expectIdenticalValues(baseline, session.values());
        // The recompile re-published a valid entry over the bad one.
        EXPECT_EQ(degraded.stats().storeWrites, 1u);
    }
    {
        runtime::Engine healed(hw::AcceleratorConfig::minimal(true),
                               options);
        healed.session(graph, values);
        EXPECT_EQ(healed.stats().storeHits, 1u);
        EXPECT_EQ(healed.stats().compiles, 0u);
    }
}

TEST(ProgramStore, TwoStoresOnOneDirectoryInteroperate)
{
    // Two store objects on one directory model two processes: a write
    // through either is served by the other, and racing writes of the
    // same fingerprint are benign (deterministic compiles, atomic
    // rename).
    const std::string dir = freshDir("shared");
    ProgramStore a(dir);
    ProgramStore b(dir);
    std::mt19937 rng(19);
    Values values;
    FactorGraph graph = randomChain(values, rng);
    const Program program = comp::compileGraph(graph, values);

    ASSERT_TRUE(a.store(0x42, "default", program));
    ASSERT_TRUE(b.store(0x42, "default", program)); // Benign re-write.
    const auto from_a = a.load(0x42, "default");
    const auto from_b = b.load(0x42, "default");
    ASSERT_NE(from_a, nullptr);
    ASSERT_NE(from_b, nullptr);
    EXPECT_EQ(comp::encodeProgram(*from_a),
              comp::encodeProgram(*from_b));
}

} // namespace
