// Tests for the post-codegen optimization passes: constant
// deduplication and dead-code elimination.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "compiler/optimize.hpp"
#include "compiler/pass.hpp"
#include "fg/factors.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using comp::IsaOp;
using comp::Program;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Vector;

/** A chain graph with plenty of repeated constants (identity seeds). */
FactorGraph
chainGraph(std::size_t n, Values &values, std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();
    Pose current = Pose::identity(3);
    for (std::size_t i = 0; i < n; ++i) {
        values.insert(i, current.retract(randomVector(6, rng, 0.05)));
        Pose step = randomPose(3, rng, 0.2, 1.0);
        if (i + 1 < n)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, step, fg::isotropicSigmas(6, 0.1));
        current = current.oplus(step);
    }
    graph.emplace<fg::PriorFactor>(0u, Pose::identity(3),
                                   fg::isotropicSigmas(6, 0.01));
    return graph;
}

TEST(Optimize, MergesConstantsAndShrinksProgram)
{
    std::mt19937 rng(101);
    Values values;
    FactorGraph graph = chainGraph(6, values, rng);
    const Program original = comp::compileGraph(graph, values);

    comp::OptimizeStats stats;
    const Program optimized = comp::optimizeProgram(original, &stats);

    EXPECT_EQ(stats.before, original.instructions.size());
    EXPECT_EQ(stats.after, optimized.instructions.size());
    EXPECT_LT(stats.after, stats.before);
    // Between factors share identity-seed constants across factors.
    EXPECT_GT(stats.mergedConstants, 3u);
    EXPECT_LE(optimized.valueSlots, original.valueSlots);

    // Dependences stay well formed.
    for (std::size_t i = 0; i < optimized.instructions.size(); ++i)
        for (std::uint32_t dep : optimized.instructions[i].deps)
            EXPECT_LT(dep, i);
}

TEST(Optimize, PreservesSemantics)
{
    std::mt19937 rng(102);
    Values values;
    FactorGraph graph = chainGraph(7, values, rng);
    const Program original = comp::compileGraph(graph, values);
    const Program optimized = comp::optimizeProgram(original);

    comp::Executor exec_a(original);
    comp::Executor exec_b(optimized);
    const auto da = exec_a.run(values);
    const auto db = exec_b.run(values);
    ASSERT_EQ(da.size(), db.size());
    for (const auto &[key, delta] : da)
        EXPECT_LT(mat::maxDifference(delta, db.at(key)), 1e-15);
}

TEST(Optimize, RemovesUnreachableWork)
{
    // A hand-built program with a dead instruction chain.
    Program program;
    program.name = "dead-test";
    program.valueSlots = 4;
    comp::Instruction load;
    load.op = IsaOp::LOADC;
    load.constVec = Vector{1.0, 2.0};
    load.dst = 0;
    load.rows = 2;
    load.cols = 1;
    program.instructions.push_back(load);

    comp::Instruction dead;
    dead.op = IsaOp::NEG;
    dead.srcs = {0};
    dead.dst = 1;
    dead.deps = {0};
    dead.rows = 2;
    dead.cols = 1;
    program.instructions.push_back(dead); // Result never stored.

    comp::Instruction live;
    live.op = IsaOp::VADD;
    live.srcs = {0, 0};
    live.dst = 2;
    live.deps = {0, 0};
    live.rows = 2;
    live.cols = 1;
    program.instructions.push_back(live);

    comp::Instruction store;
    store.op = IsaOp::STORE;
    store.srcs = {2};
    store.dst = 2;
    store.deps = {2};
    program.instructions.push_back(store);
    program.deltas.push_back({7, 2});

    comp::OptimizeStats stats;
    const Program optimized = comp::optimizeProgram(program, &stats);
    EXPECT_EQ(stats.removedDead, 1u);
    EXPECT_EQ(optimized.instructions.size(), 3u);

    fg::Values values;
    comp::Executor executor(optimized);
    const auto deltas = executor.run(values);
    EXPECT_LT(mat::maxDifference(deltas.at(7), Vector{2.0, 4.0}),
              1e-15);
}

TEST(Optimize, EmptyProgramIsANoOp)
{
    Program program;
    program.name = "empty";

    comp::OptimizeStats stats;
    const Program optimized = comp::optimizeProgram(program, &stats);
    EXPECT_EQ(optimized.instructions.size(), 0u);
    EXPECT_EQ(optimized.valueSlots, 0u);
    EXPECT_EQ(stats.before, 0u);
    EXPECT_EQ(stats.after, 0u);
    EXPECT_EQ(stats.mergedConstants, 0u);
    EXPECT_EQ(stats.removedDead, 0u);
}

TEST(Optimize, ProgramWithoutStoresIsEntirelyDead)
{
    // Without a STORE no result is observable, so DCE must drop the
    // whole chain.
    Program program;
    program.name = "no-stores";
    program.valueSlots = 2;

    comp::Instruction load;
    load.op = IsaOp::LOADC;
    load.constVec = Vector{3.0, 4.0};
    load.dst = 0;
    load.rows = 2;
    load.cols = 1;
    program.instructions.push_back(load);

    comp::Instruction neg;
    neg.op = IsaOp::NEG;
    neg.srcs = {0};
    neg.dst = 1;
    neg.deps = {0};
    neg.rows = 2;
    neg.cols = 1;
    program.instructions.push_back(neg);

    comp::OptimizeStats stats;
    const Program optimized = comp::optimizeProgram(program, &stats);
    EXPECT_EQ(optimized.instructions.size(), 0u);
    EXPECT_EQ(optimized.valueSlots, 0u);
    EXPECT_EQ(stats.removedDead, 2u);
}

TEST(Optimize, MergesLoadsThatDifferOnlyInSlot)
{
    // Two LOADC with byte-identical payloads but different dst slots:
    // dedup must collapse them while both consumers keep working.
    Program program;
    program.name = "twin-loads";
    program.valueSlots = 3;

    for (std::uint32_t slot : {0u, 1u}) {
        comp::Instruction load;
        load.op = IsaOp::LOADC;
        load.constVec = Vector{1.5, -2.5};
        load.dst = slot;
        load.rows = 2;
        load.cols = 1;
        program.instructions.push_back(load);
    }

    comp::Instruction add;
    add.op = IsaOp::VADD;
    add.srcs = {0, 1};
    add.dst = 2;
    add.deps = {0, 1};
    add.rows = 2;
    add.cols = 1;
    program.instructions.push_back(add);

    comp::Instruction store;
    store.op = IsaOp::STORE;
    store.srcs = {2};
    store.dst = 2;
    store.deps = {2};
    program.instructions.push_back(store);
    program.deltas.push_back({3, 2});

    comp::OptimizeStats stats;
    const Program optimized = comp::optimizeProgram(program, &stats);
    EXPECT_EQ(stats.mergedConstants, 1u);
    EXPECT_EQ(optimized.instructions.size(), 3u);

    fg::Values values;
    comp::Executor executor(optimized);
    const auto deltas = executor.run(values);
    EXPECT_LT(mat::maxDifference(deltas.at(3), Vector{3.0, -5.0}),
              1e-15);
}

TEST(Optimize, RewriteDetectsUseOfUndefinedSlot)
{
    // Dropping a producer whose result is still read must be rejected
    // immediately — this is the safety net under every pass.
    Program program;
    program.name = "undefined-slot";
    program.valueSlots = 2;

    comp::Instruction load;
    load.op = IsaOp::LOADC;
    load.constVec = Vector{1.0};
    load.dst = 0;
    load.rows = 1;
    load.cols = 1;
    program.instructions.push_back(load);

    comp::Instruction store;
    store.op = IsaOp::STORE;
    store.srcs = {0};
    store.dst = 0;
    store.deps = {0};
    program.instructions.push_back(store);
    program.deltas.push_back({1, 0});

    std::vector<bool> drop = {true, false}; // Drop the only producer.
    EXPECT_THROW(comp::rewriteProgram(program, drop, {}),
                 std::logic_error);
}

TEST(Optimize, AcceleratesOnTheSimulatedHardware)
{
    // Fewer instructions means fewer cycles on the same accelerator.
    std::mt19937 rng(103);
    Values values;
    FactorGraph graph = chainGraph(8, values, rng);
    const Program original = comp::compileGraph(graph, values);
    const Program optimized = comp::optimizeProgram(original);

    // (Include hw only through the executor-equivalent check here;
    // the cycle comparison lives in the ablation bench.)
    EXPECT_LT(optimized.instructions.size(),
              original.instructions.size());
}

} // namespace
