// Tests for quaternion conversions and g2o pose-graph I/O.

#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "fg/factors.hpp"
#include "fg/io_g2o.hpp"
#include "fg/optimizer.hpp"
#include "lie/quaternion.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::Vector;

class QuaternionRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(QuaternionRoundTrip, MatrixQuatMatrix)
{
    std::mt19937 rng(130 + GetParam());
    const Matrix r = lie::expSo(randomVector(3, rng, 1.5));
    const Vector q = lie::toQuaternion(r);
    EXPECT_NEAR(q.norm(), 1.0, 1e-12);
    EXPECT_GE(q[3], 0.0); // Canonical sign.
    EXPECT_LT(mat::maxDifference(lie::fromQuaternion(q), r), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuaternionRoundTrip,
                         ::testing::Range(0, 10));

TEST(Quaternion, NearPiRotations)
{
    // Shepperd branches: axis-aligned rotations by ~pi hit each one.
    for (int axis = 0; axis < 3; ++axis) {
        Vector phi(3);
        phi[axis] = 3.14;
        const Matrix r = lie::expSo(phi);
        EXPECT_LT(mat::maxDifference(
                      lie::fromQuaternion(lie::toQuaternion(r)), r),
                  1e-12)
            << "axis " << axis;
    }
}

TEST(Quaternion, InvalidInputs)
{
    EXPECT_THROW(lie::toQuaternion(Matrix::identity(2)),
                 std::invalid_argument);
    EXPECT_THROW(lie::fromQuaternion(Vector{1.0, 0.0, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW(lie::fromQuaternion(Vector{0.0, 0.0, 0.0, 0.0}),
                 std::invalid_argument);
    // Non-unit quaternions are normalized.
    const Matrix r =
        lie::fromQuaternion(Vector{0.0, 0.0, 0.0, 2.0});
    EXPECT_LT(mat::maxDifference(r, Matrix::identity(3)), 1e-12);
}

TEST(G2o, RoundTrip2d)
{
    std::mt19937 rng(131);
    FactorGraph graph;
    Values values;
    Pose current = Pose::identity(2);
    for (std::size_t i = 0; i < 5; ++i) {
        values.insert(i, current);
        if (i + 1 < 5)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, randomPose(2, rng, 0.3, 1.0),
                fg::isotropicSigmas(3, 0.1));
        current = current.oplus(randomPose(2, rng, 0.3, 1.0));
    }

    std::stringstream stream;
    fg::writeG2o(stream, graph, values);
    const auto loaded = fg::readG2o(stream);

    ASSERT_EQ(loaded.initial.size(), values.size());
    ASSERT_EQ(loaded.graph.size(), graph.size());
    for (fg::Key key : values.keys())
        EXPECT_LT(lie::poseDistance(loaded.initial.pose(key),
                                    values.pose(key)),
                  1e-9);
    for (std::size_t i = 0; i < graph.size(); ++i) {
        const auto &a =
            dynamic_cast<const fg::BetweenFactor &>(graph.factor(i));
        const auto &b = dynamic_cast<const fg::BetweenFactor &>(
            loaded.graph.factor(i));
        EXPECT_LT(lie::poseDistance(a.measured(), b.measured()), 1e-9);
        EXPECT_LT(mat::maxDifference(a.sigmas(), b.sigmas()), 1e-9);
    }
}

TEST(G2o, RoundTrip3d)
{
    std::mt19937 rng(132);
    FactorGraph graph;
    Values values;
    for (std::size_t i = 0; i < 4; ++i)
        values.insert(i, randomPose(3, rng, 0.8, 3.0));
    for (std::size_t i = 0; i + 1 < 4; ++i)
        graph.emplace<fg::BetweenFactor>(
            i, i + 1,
            values.pose(i + 1).ominus(values.pose(i)),
            fg::isotropicSigmas(6, 0.05));

    std::stringstream stream;
    fg::writeG2o(stream, graph, values);
    const auto loaded = fg::readG2o(stream);
    for (fg::Key key : values.keys())
        EXPECT_LT(lie::poseDistance(loaded.initial.pose(key),
                                    values.pose(key)),
                  1e-9);
    for (std::size_t i = 0; i < graph.size(); ++i) {
        const auto &a =
            dynamic_cast<const fg::BetweenFactor &>(graph.factor(i));
        const auto &b = dynamic_cast<const fg::BetweenFactor &>(
            loaded.graph.factor(i));
        EXPECT_LT(lie::poseDistance(a.measured(), b.measured()), 1e-9);
    }
}

TEST(G2o, LoadedGraphOptimizes)
{
    // A hand-written 2-D square with a loop closure; optimization from
    // the perturbed vertices recovers consistency.
    const char *text =
        "VERTEX_SE2 0 0 0 0\n"
        "VERTEX_SE2 1 1.1 0.1 1.62\n"
        "VERTEX_SE2 2 0.9 1.1 3.1\n"
        "VERTEX_SE2 3 -0.1 0.95 -1.5\n"
        "EDGE_SE2 0 1 1 0 1.5708 100 0 0 100 0 400\n"
        "EDGE_SE2 1 2 1 0 1.5708 100 0 0 100 0 400\n"
        "EDGE_SE2 2 3 1 0 1.5708 100 0 0 100 0 400\n"
        "EDGE_SE2 3 0 1 0 1.5708 100 0 0 100 0 400\n";
    std::istringstream stream(text);
    auto data = fg::readG2o(stream);
    EXPECT_EQ(data.initial.size(), 4u);
    EXPECT_EQ(data.graph.size(), 4u);

    // Anchor the gauge and solve.
    data.graph.emplace<fg::PriorFactor>(
        0u, data.initial.pose(0), fg::isotropicSigmas(3, 1e-3));
    auto result = fg::optimize(data.graph, data.initial);
    EXPECT_LT(result.finalError, 1e-3);
    // The optimized loop is consistent: composing the four relative
    // poses returns to the start.
    Pose composed = result.values.pose(0);
    for (fg::Key key : {1, 2, 3, 0})
        composed = result.values.pose(key); // Last = back at 0.
    EXPECT_LT(lie::poseDistance(result.values.pose(0), composed),
              1e-6);
}

TEST(G2o, MalformedInputsRejected)
{
    {
        std::istringstream bad("VERTEX_SE2 0 1.0\n");
        EXPECT_THROW(fg::readG2o(bad), std::runtime_error);
    }
    {
        std::istringstream bad(
            "EDGE_SE2 0 1 1 0 0 -1 0 0 1 0 1\n"); // Negative info.
        EXPECT_THROW(fg::readG2o(bad), std::runtime_error);
    }
    EXPECT_THROW(fg::loadG2o("/nonexistent/x.g2o"),
                 std::runtime_error);

    // Comments and blank lines are fine.
    std::istringstream ok("# comment\n\nVERTEX_SE2 0 0 0 0\n");
    EXPECT_EQ(fg::readG2o(ok).initial.size(), 1u);
}

TEST(G2o, UnsupportedRecordsSkippedWithWarnings)
{
    // Benign records other tools emit (FIX, landmark vertices) must
    // not abort the load; they are skipped and reported.
    std::istringstream mixed("FIX 0\n"
                             "VERTEX_SE2 0 0 0 0\n"
                             "VERTEX_SE2 1 1 0 1.5\n"
                             "VERTEX_XY 7 2.0 3.0\n"
                             "EDGE_SE2 0 1 1 0 1.5708 "
                             "100 0 0 100 0 400\n");
    const auto data = fg::readG2o(mixed);
    EXPECT_EQ(data.initial.size(), 2u);
    EXPECT_EQ(data.graph.size(), 1u);
    ASSERT_EQ(data.warnings.size(), 2u);
    EXPECT_NE(data.warnings[0].find("FIX"), std::string::npos);
    EXPECT_NE(data.warnings[1].find("VERTEX_XY"), std::string::npos);

    // A malformed record of a *supported* tag still throws: skipping
    // is reserved for foreign tags, not broken pose data.
    std::istringstream bad("FOO 1 2 3\n"
                           "VERTEX_SE2 0 1.0\n");
    EXPECT_THROW(fg::readG2o(bad), std::runtime_error);

    // A clean file produces no warnings.
    std::istringstream ok("VERTEX_SE2 0 0 0 0\n");
    EXPECT_TRUE(fg::readG2o(ok).warnings.empty());
}

TEST(G2o, OffDiagonalInformationWarnsOncePerFile)
{
    // Correlated information is dropped (our factors whiten with a
    // diagonal); the reader must say so, but exactly once per file
    // no matter how many edges carry off-diagonal terms.
    std::istringstream in("VERTEX_SE2 0 0 0 0\n"
                          "VERTEX_SE2 1 1 0 0\n"
                          "VERTEX_SE2 2 2 0 0\n"
                          "EDGE_SE2 0 1 1 0 0 100 5 0 100 0 400\n"
                          "EDGE_SE2 1 2 1 0 0 100 0 -3 100 0 400\n");
    const auto data = fg::readG2o(in);
    EXPECT_EQ(data.graph.size(), 2u);
    ASSERT_EQ(data.warnings.size(), 1u);
    EXPECT_NE(data.warnings[0].find("off-diagonal"),
              std::string::npos);
    EXPECT_NE(data.warnings[0].find("EDGE_SE2"), std::string::npos);
    // The diagonal survives: sigma = 1/sqrt(info) in [theta; x; y]
    // order.
    const auto &edge =
        dynamic_cast<const fg::BetweenFactor &>(data.graph.factor(0));
    EXPECT_NEAR(edge.sigmas()[0], 1.0 / 20.0, 1e-12);
    EXPECT_NEAR(edge.sigmas()[1], 1.0 / 10.0, 1e-12);
    EXPECT_NEAR(edge.sigmas()[2], 1.0 / 10.0, 1e-12);

    // A purely diagonal file stays silent.
    std::istringstream clean(
        "VERTEX_SE2 0 0 0 0\n"
        "VERTEX_SE2 1 1 0 0\n"
        "EDGE_SE2 0 1 1 0 0 100 0 0 100 0 400\n");
    EXPECT_TRUE(fg::readG2o(clean).warnings.empty());
}

TEST(G2o, NonPositiveInformationDiagnostics)
{
    // The error names the offending value and echoes the record, so
    // a bad line in a 10k-edge file is findable.
    const std::string line =
        "EDGE_SE2 0 1 1 0 0 -2.5 0 0 100 0 400";
    std::istringstream in(line + "\n");
    try {
        fg::readG2o(in);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("non-positive information"),
                  std::string::npos);
        EXPECT_NE(what.find("-2.5"), std::string::npos);
        EXPECT_NE(what.find(line), std::string::npos);
    }

    // Zero is as unusable as negative (sigma would be infinite).
    std::istringstream zero(
        "EDGE_SE2 0 1 1 0 0 0 0 0 100 0 400\n");
    EXPECT_THROW(fg::readG2o(zero), std::runtime_error);
}

TEST(G2o, DenormalizedQuaternionsNormalized)
{
    // Published files carry quaternions that drifted off unit length;
    // the reader normalizes before converting, both for vertices and
    // edges, so a scaled quaternion loads as the same rotation.
    auto se3 = [](const char *quat) {
        std::string text =
            std::string("VERTEX_SE3:QUAT 0 1 2 3 ") + quat + "\n";
        std::istringstream in(text);
        return fg::readG2o(in).initial.pose(0);
    };
    const Pose unit = se3("0 0.707106781186547 0 0.707106781186547");
    const Pose scaled = se3("0 1.4 0 1.4");
    EXPECT_LT(lie::poseDistance(unit, scaled), 1e-12);
    EXPECT_NEAR(unit.phi().norm(), 1.5707963267948966, 1e-9);

    // And the normalized pose round-trips through write/read.
    FactorGraph graph;
    Values values;
    values.insert(0u, scaled);
    values.insert(1u, scaled.oplus(unit));
    graph.emplace<fg::BetweenFactor>(
        0u, 1u, unit, fg::isotropicSigmas(6, 0.1));
    std::stringstream round;
    fg::writeG2o(round, graph, values);
    const auto loaded = fg::readG2o(round);
    EXPECT_TRUE(loaded.warnings.empty());
    EXPECT_LT(lie::poseDistance(loaded.initial.pose(0), scaled),
              1e-9);
}

TEST(G2o, DegenerateQuaternionsRejected)
{
    // An all-zero (or non-finite) quaternion has no direction to
    // normalize; that is corrupt data, not drift.
    std::istringstream zero("VERTEX_SE3:QUAT 0 1 2 3 0 0 0 0\n");
    try {
        fg::readG2o(zero);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("degenerate quaternion"),
                  std::string::npos);
    }
    std::istringstream nan("VERTEX_SE3:QUAT 0 1 2 3 nan 0 0 1\n");
    EXPECT_THROW(fg::readG2o(nan), std::runtime_error);
}

TEST(G2o, NonPoseVariablesRejected)
{
    FactorGraph graph;
    Values values;
    values.insert(1, Vector{1.0, 2.0});
    std::stringstream stream;
    EXPECT_THROW(fg::writeG2o(stream, graph, values),
                 std::invalid_argument);
}

} // namespace
