// Fault tolerance, end to end: deterministic fault-injection
// schedules, symptom detection in the Session, the retry -> fallback
// degradation ladder (bit-identical to the reference executor), the
// health export, adaptive Levenberg-Marquardt termination reasons,
// and nested ServerPool submission (the fork-join deadlock fix).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "fg/optimizer.hpp"
#include "hw/fault_injection.hpp"
#include "runtime/engine.hpp"
#include "runtime/server_pool.hpp"
#include "test_json.hpp"

using namespace orianna;
using orianna::test::parseJson;

namespace {

/** The runtime_server example's odometry chain. */
fg::FactorGraph
chainGraph(const std::vector<lie::Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    return graph;
}

std::vector<lie::Pose>
chainTruth()
{
    std::vector<lie::Pose> truth;
    for (int i = 0; i < 5; ++i)
        truth.emplace_back(
            mat::Vector{0.1 * i, 0.02 * i, 0.05 * i},
            mat::Vector{0.4 * i, 0.04 * i, 0.0});
    return truth;
}

fg::Values
chainInitial(const std::vector<lie::Pose> &truth)
{
    fg::Values initial;
    for (std::size_t i = 0; i < truth.size(); ++i)
        initial.insert(i + 1,
                       truth[i].retract(mat::Vector{0.05, -0.05, 0.05,
                                                    -0.05, 0.05,
                                                    -0.05}));
    return initial;
}

/** A 2-D square pose loop that Gauss-Newton solves in a few steps. */
fg::FactorGraph
squareGraph(fg::Values &initial)
{
    initial.insert(0, lie::Pose(mat::Vector{0.0},
                                mat::Vector{0.0, 0.0}));
    initial.insert(1, lie::Pose(mat::Vector{1.62},
                                mat::Vector{1.1, 0.1}));
    initial.insert(2, lie::Pose(mat::Vector{3.1},
                                mat::Vector{0.9, 1.1}));
    initial.insert(3, lie::Pose(mat::Vector{-1.5},
                                mat::Vector{-0.1, 0.95}));
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(0, initial.pose(0),
                                   fg::isotropicSigmas(3, 1e-3));
    const lie::Pose edge(mat::Vector{1.5708}, mat::Vector{1.0, 0.0});
    const mat::Vector sigmas =
        fg::isotropicSigmas(3, 0.1);
    graph.emplace<fg::BetweenFactor>(0, 1, edge, sigmas);
    graph.emplace<fg::BetweenFactor>(1, 2, edge, sigmas);
    graph.emplace<fg::BetweenFactor>(2, 3, edge, sigmas);
    graph.emplace<fg::BetweenFactor>(3, 0, edge, sigmas);
    return graph;
}

/** Bitwise equality over every variable of two value sets. */
void
expectIdenticalValues(const fg::Values &a, const fg::Values &b)
{
    for (fg::Key key : a.keys()) {
        if (a.isPose(key)) {
            EXPECT_EQ(mat::maxDifference(a.pose(key).phi(),
                                         b.pose(key).phi()),
                      0.0)
                << "pose rotation of key " << key;
            EXPECT_EQ(mat::maxDifference(a.pose(key).t(),
                                         b.pose(key).t()),
                      0.0)
                << "pose translation of key " << key;
        } else {
            EXPECT_EQ(mat::maxDifference(a.vector(key),
                                         b.vector(key)),
                      0.0)
                << "vector key " << key;
        }
    }
}

/** Flatten a fault schedule for byte-for-byte comparison. */
std::string
serializeSchedule(const std::vector<hw::FaultDecision> &schedule)
{
    std::string out;
    for (const hw::FaultDecision &d : schedule) {
        out += std::to_string(d.extraCycles);
        out += d.corrupt ? ":1" : ":0";
        for (std::uint64_t count : d.fired) {
            out += ':';
            out += std::to_string(count);
        }
        out += ';';
    }
    return out;
}

/** A synthetic per-instruction unit-kind map cycling every kind. */
std::vector<std::uint8_t>
cyclingUnitKinds(std::size_t n)
{
    std::vector<std::uint8_t> kinds(n);
    for (std::size_t g = 0; g < n; ++g)
        kinds[g] = static_cast<std::uint8_t>(g % hw::kUnitKindCount);
    return kinds;
}

// ---------------------------------------------------------------
// Fault plan parsing and schedule determinism
// ---------------------------------------------------------------

TEST(FaultPlan, ParsesCampaignSpecs)
{
    const hw::FaultPlan plan = hw::FaultPlan::parse(
        "42@corrupt:matmul:0.25,stall:qr:0.5:1234,spike:backsub:0.1");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.faults.size(), 3u);
    EXPECT_EQ(plan.faults[0].kind, hw::FaultKind::CorruptOutput);
    EXPECT_EQ(plan.faults[0].unit, hw::UnitKind::MatMul);
    EXPECT_EQ(plan.faults[0].rate, 0.25);
    EXPECT_EQ(plan.faults[1].kind, hw::FaultKind::Stall);
    EXPECT_EQ(plan.faults[1].cycles, 1234u);
    EXPECT_EQ(plan.faults[2].kind, hw::FaultKind::LatencySpike);
    EXPECT_EQ(plan.faults[2].unit, hw::UnitKind::BackSub);

    // "all" expands to one spec per functional-unit kind.
    const hw::FaultPlan all = hw::FaultPlan::parse("corrupt:all:0.1");
    EXPECT_EQ(all.seed, 0u);
    EXPECT_EQ(all.faults.size(), hw::kUnitKindCount);

    EXPECT_THROW(hw::FaultPlan::parse("bogus:all:0.1"),
                 std::invalid_argument);
    EXPECT_THROW(hw::FaultPlan::parse("stall:frobnicator:0.1"),
                 std::invalid_argument);
    EXPECT_THROW(hw::FaultPlan::parse("stall:all"),
                 std::invalid_argument);
    EXPECT_THROW(hw::FaultPlan::parse("stall:all:zero"),
                 std::invalid_argument);
}

TEST(FaultInjection, SameSeedReplaysByteIdenticalSchedule)
{
    const auto kinds = cyclingUnitKinds(96);
    const char *spec = "7@corrupt:all:0.2,stall:qr:0.3:5000,"
                       "spike:matmul:0.4";
    const hw::FaultInjector a(hw::FaultPlan::parse(spec));
    const hw::FaultInjector b(hw::FaultPlan::parse(spec));

    const std::string first = serializeSchedule(a.schedule(3, 0, kinds));
    // Replays are pure functions of (seed, frame, attempt, g, spec):
    // same injector again, and an independently parsed twin.
    EXPECT_EQ(serializeSchedule(a.schedule(3, 0, kinds)), first);
    EXPECT_EQ(serializeSchedule(b.schedule(3, 0, kinds)), first);

    // Any coordinate change rolls a different schedule.
    EXPECT_NE(serializeSchedule(a.schedule(3, 1, kinds)), first);
    EXPECT_NE(serializeSchedule(a.schedule(4, 0, kinds)), first);
    const hw::FaultInjector other(
        hw::FaultPlan::parse(std::string("8@") + (spec + 2)));
    EXPECT_NE(serializeSchedule(other.schedule(3, 0, kinds)), first);
}

TEST(FaultInjection, RateBoundsAreExact)
{
    const auto kinds = cyclingUnitKinds(64);
    const hw::FaultInjector never(
        hw::FaultPlan::parse("corrupt:all:0.0"));
    for (const hw::FaultDecision &d : never.schedule(0, 0, kinds))
        EXPECT_FALSE(d.any());

    const hw::FaultInjector always(
        hw::FaultPlan::parse("corrupt:matmul:1.0"));
    const auto schedule = always.schedule(0, 0, kinds);
    for (std::size_t g = 0; g < kinds.size(); ++g) {
        const bool is_matmul =
            static_cast<hw::UnitKind>(kinds[g]) ==
            hw::UnitKind::MatMul;
        EXPECT_EQ(schedule[g].corrupt, is_matmul) << "g=" << g;
    }
}

// ---------------------------------------------------------------
// Session degradation: retry, fallback, counters, health export
// ---------------------------------------------------------------

TEST(Degradation, CorruptFramesFallBackBitIdentical)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth);

    // Clean engine: the ground truth for the degraded results. Both
    // engines pin fp64 — the bit-identity below is the fp64
    // pass-equivalence contract (the fp32 rung has its own test in
    // test_precision.cpp).
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    runtime::Engine clean(hw::AcceleratorConfig::minimal(true), fp64);
    runtime::Session clean_session =
        clean.session(graph, initial);
    clean_session.iterate(3);

    // Every instruction of every attempt corrupts, so each frame
    // burns the full retry budget and lands on the reference rung.
    runtime::EngineOptions options = fp64;
    options.faultPlan = hw::FaultPlan::parse("9@corrupt:all:1.0");
    runtime::Engine faulty(hw::AcceleratorConfig::minimal(true),
                           options);
    runtime::Session session = faulty.session(graph, initial);
    ASSERT_TRUE(session.hasFallback());
    session.iterate(3);

    // The fallback frames retract reference-program deltas, which
    // the pass-equivalence contract keeps bit-identical to the
    // optimized program's — so the degraded stream lands on exactly
    // the clean stream's values.
    expectIdenticalValues(clean_session.values(), session.values());

    EXPECT_EQ(session.frames(), 3u);
    EXPECT_EQ(session.fallbacks(), 3u);
    EXPECT_EQ(session.retries(), 3u * 2u);
    EXPECT_EQ(session.faultsDetected(), 3u * 3u);
    EXPECT_TRUE(session.lastFrameDegraded());
    EXPECT_GT(session.totals().faultsInjected, 0u);
    EXPECT_GT(session.totals()
                  .faultsByKind[static_cast<std::size_t>(
                      hw::FaultKind::CorruptOutput)],
              0u);

    const auto &health = faulty.health();
    EXPECT_EQ(health.framesOk.load(), 3u);
    EXPECT_EQ(health.fallbacks.load(), 3u);
    EXPECT_EQ(health.retries.load(), 6u);
    EXPECT_EQ(health.failures.load(), 0u);

    const auto json = parseJson(faulty.healthJson());
    EXPECT_EQ(json->at("status").asString(), "degraded");
    EXPECT_TRUE(json->at("fault_injection").boolean);
    EXPECT_EQ(json->at("frames_ok").asNumber(), 3.0);
    EXPECT_EQ(json->at("fallbacks").asNumber(), 3.0);
    EXPECT_EQ(json->at("retries").asNumber(), 6.0);
    EXPECT_EQ(json->at("failures").asNumber(), 0.0);
    // Optimized + reference artifact, one compile each.
    EXPECT_EQ(json->at("compiles").asNumber(), 2.0);
}

TEST(Degradation, StallTripsFrameDeadline)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth);

    // Measure the healthy frame to place the deadline right at it:
    // any stalled attempt then overshoots.
    runtime::Engine clean(hw::AcceleratorConfig::minimal(true));
    runtime::Session probe = clean.session(graph, initial);
    const std::uint64_t healthy_cycles = probe.step().cycles;

    runtime::EngineOptions options;
    options.faultPlan =
        hw::FaultPlan::parse("11@stall:all:1.0:50000");
    options.degradation.frameTimeoutCycles = healthy_cycles;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    runtime::Session session = engine.session(graph, initial);
    session.step();

    // Every attempt stalls past the deadline; the reference rung
    // (injection disarmed, deadline waived) delivers the frame.
    EXPECT_EQ(session.frameTimeouts(), 3u);
    EXPECT_EQ(session.fallbacks(), 1u);
    EXPECT_TRUE(session.lastFrameDegraded());
    EXPECT_EQ(engine.health().frameTimeouts.load(), 3u);

    const auto json = parseJson(engine.healthJson());
    EXPECT_EQ(json->at("frame_timeouts").asNumber(), 3.0);
}

TEST(Degradation, NoFallbackFailsLoudly)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth);

    runtime::EngineOptions options;
    options.faultPlan = hw::FaultPlan::parse("5@corrupt:all:1.0");
    options.degradation.fallback = false;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    runtime::Session session = engine.session(graph, initial);
    ASSERT_FALSE(session.hasFallback());

    // A corrupted frame must raise after the retry budget — never
    // silently retract NaNs (the historical behavior).
    EXPECT_THROW(session.step(), std::runtime_error);
    EXPECT_EQ(session.frames(), 0u);
    EXPECT_EQ(engine.health().failures.load(), 1u);
    const auto json = parseJson(engine.healthJson());
    EXPECT_EQ(json->at("status").asString(), "failing");

    // The session values were never touched by the failed frame.
    expectIdenticalValues(initial, session.values());
}

TEST(Degradation, FaultFreeEngineIsUnchanged)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth);

    // No fault source: no reference compile, no retries, status ok.
    // Pinned fp64 — an fp32 datapath IS a fault source (DESIGN.md
    // §12) and would provision the fallback this test rules out.
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true), fp64);
    runtime::Session session = engine.session(graph, initial);
    session.iterate(2);
    EXPECT_FALSE(session.hasFallback());
    EXPECT_EQ(engine.stats().compiles, 1u);
    EXPECT_EQ(session.faultsDetected(), 0u);
    const auto json = parseJson(engine.healthJson());
    EXPECT_EQ(json->at("status").asString(), "ok");
    EXPECT_FALSE(json->at("fault_injection").boolean);
    EXPECT_EQ(json->at("frames_ok").asNumber(), 2.0);
}

// ---------------------------------------------------------------
// Acceptance: every benchmark app serves through faults on every
// unit kind, and the degraded deltas match the reference executor.
// ---------------------------------------------------------------

TEST(Degradation, BenchmarkAppsCompleteUnderFaultsOnEveryUnit)
{
    for (apps::AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench = apps::buildApp(kind, 1);
        bench.app.compile();

        for (std::size_t i = 0; i < bench.app.size(); ++i) {
            const core::Algorithm &alg = bench.app.algorithm(i);

            // corrupt:all covers every functional-unit kind; rate 1
            // forces the full ladder on every frame.
            runtime::EngineOptions options;
            options.faultPlan =
                hw::FaultPlan::parse("13@corrupt:all:1.0");
            runtime::Engine engine(
                hw::AcceleratorConfig::minimal(true), options);
            runtime::Session session = engine.session(
                alg.graph, alg.values, alg.stepScale,
                static_cast<std::uint8_t>(i), alg.name);

            // Mirror the frames on the literal reference executor
            // (the software-semantics interpreter over the
            // cleanup-only program Application::compile kept).
            fg::Values mirror = alg.values;
            for (int frame = 0; frame < 2; ++frame) {
                comp::Executor reference(alg.referenceProgram);
                auto deltas = reference.run(mirror);
                if (alg.stepScale != 1.0)
                    for (auto &[key, delta] : deltas)
                        delta = delta * alg.stepScale;
                mirror.retractAll(deltas);

                session.step();
                EXPECT_TRUE(session.lastFrameDegraded())
                    << appName(kind) << "/" << alg.name;
            }
            EXPECT_EQ(session.fallbacks(), 2u)
                << appName(kind) << "/" << alg.name;
            expectIdenticalValues(mirror, session.values());
        }
    }
}

// ---------------------------------------------------------------
// Adaptive Levenberg-Marquardt termination matrix
// ---------------------------------------------------------------

TEST(AdaptiveLm, ConvergesOnWellPosedGraph)
{
    fg::Values initial;
    const fg::FactorGraph graph = squareGraph(initial);
    const fg::OptimizeResult result = fg::optimize(graph, initial);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.reason, fg::TerminationReason::Converged);
    EXPECT_STREQ(fg::terminationReasonName(result.reason),
                 "converged");
    EXPECT_LT(result.finalError, 1e-3);
    // The seed workloads run the historical undamped path: no step
    // was ever rejected getting there.
    EXPECT_EQ(result.rejectedSteps, 0u);
}

TEST(AdaptiveLm, ReportsMaxIterationsWhenBudgetTooSmall)
{
    fg::Values initial;
    const fg::FactorGraph graph = squareGraph(initial);
    fg::GaussNewtonParams params;
    params.maxIterations = 1;
    const fg::OptimizeResult result =
        fg::optimize(graph, initial, params);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.reason, fg::TerminationReason::MaxIterations);
    EXPECT_EQ(result.iterations, 1u);
}

TEST(AdaptiveLm, NanObjectiveIsNumericalFailureNotConvergence)
{
    fg::Values initial;
    const fg::FactorGraph graph = squareGraph(initial);
    // Poison one pose: the objective is NaN from the first evaluation.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    fg::Values poisoned = initial;
    poisoned.update(2, lie::Pose(mat::Vector{nan},
                                 mat::Vector{0.9, 1.1}));

    const fg::OptimizeResult result = fg::optimize(graph, poisoned);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.reason,
              fg::TerminationReason::NumericalFailure);
    // The historical loop burned every iteration on NaN and reported
    // maxIterations "successfully"; now it stops before the first.
    EXPECT_EQ(result.iterations, 0u);
    EXPECT_TRUE(std::isnan(result.finalError));
}

TEST(AdaptiveLm, OvershootingStepsDivergeInsteadOfConverging)
{
    fg::Values initial;
    const fg::FactorGraph graph = squareGraph(initial);
    // Massive step overscaling makes every Gauss-Newton step increase
    // the error; with the damping ceiling pinned low the optimizer
    // must classify the run as diverged — the historical
    // |decrease| < tol predicate could call this "converged".
    fg::GaussNewtonParams params;
    params.stepScale = 50.0;
    params.lambdaFloor = 1e-4;
    params.lambdaMax = 1e-3;
    const fg::OptimizeResult result =
        fg::optimize(graph, initial, params);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.reason, fg::TerminationReason::Diverged);
    EXPECT_GT(result.rejectedSteps, 0u);
    // Rejected-only run: the entry values were never replaced by a
    // worse candidate.
    EXPECT_EQ(result.iterations, 0u);
}

TEST(AdaptiveLm, DampingTurnsOvershootIntoMonotoneProgress)
{
    fg::Values initial;
    const fg::FactorGraph graph = squareGraph(initial);
    // Same overshooting problem, but with the default lambda ceiling
    // the rejection loop can always damp a step far enough to make
    // progress: the run that diverged above instead descends
    // monotonically (if only linearly, so it spends its budget
    // instead of converging — which is the correct report).
    fg::GaussNewtonParams params;
    params.stepScale = 50.0;
    params.maxIterations = 100;
    const double entry_error = graph.totalError(initial);
    const fg::OptimizeResult result =
        fg::optimize(graph, initial, params);
    EXPECT_NE(result.reason, fg::TerminationReason::Diverged);
    EXPECT_NE(result.reason,
              fg::TerminationReason::NumericalFailure);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_GT(result.rejectedSteps, 0u);
    EXPECT_LT(result.finalError, entry_error);
    // Every accepted step was non-increasing: the historical loop's
    // oscillating error trace cannot happen under adaptive control.
    for (const fg::IterationRecord &it : result.history)
        EXPECT_LE(it.errorAfter, it.errorBefore);
}

// ---------------------------------------------------------------
// Nested ServerPool submission (work-while-wait regression)
// ---------------------------------------------------------------

TEST(ServerPool, NestedSubmissionFromEveryWorkerCompletes)
{
    // Pre-fix, a worker waiting on a nested batch blocked its thread;
    // with every worker nesting at once no thread remained to run
    // the inner tasks and the pool deadlocked. The waiting worker
    // now helps execute pending tasks instead.
    runtime::ServerPool pool(4);
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(6, [&](std::size_t) {
            pool.parallelFor(2, [&](std::size_t) {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(ran.load(), 8 * 6 * 2);

    // Exceptions cross nested batches like flat ones.
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](std::size_t i) {
                             pool.parallelFor(3, [&](std::size_t j) {
                                 if (i == 1 && j == 2)
                                     throw std::runtime_error("boom");
                             });
                         }),
        std::runtime_error);

    // The pool stays serviceable afterwards.
    std::atomic<int> after{0};
    pool.parallelFor(5, [&](std::size_t) {
        after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 5);
}

TEST(ServerPool, NestedSessionsServeUnderFaults)
{
    // The serving shape of the deadlock: pool tasks that themselves
    // fan out, here with degradation active so fallback execution
    // also runs on worker threads.
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth);

    runtime::EngineOptions options;
    options.faultPlan = hw::FaultPlan::parse("21@corrupt:all:1.0");
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);

    runtime::ServerPool pool(3);
    std::vector<runtime::Session> sessions;
    for (int c = 0; c < 3; ++c)
        sessions.push_back(engine.session(graph, initial));
    pool.parallelFor(sessions.size(), [&](std::size_t c) {
        // Nested fan-out per client: each frame stepped as a
        // (single-task) nested batch from inside the outer task.
        for (int frame = 0; frame < 2; ++frame)
            pool.parallelFor(1, [&sessions, c](std::size_t) {
                sessions[c].step();
            });
    });

    for (std::size_t c = 1; c < sessions.size(); ++c)
        expectIdenticalValues(sessions[0].values(),
                              sessions[c].values());
    EXPECT_EQ(engine.health().fallbacks.load(), 6u);
    EXPECT_EQ(engine.health().failures.load(), 0u);
}

} // namespace
