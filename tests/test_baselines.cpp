// Tests for the platform models and the VANILLA-HLS / STACK baselines.

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "baselines/platform_models.hpp"
#include "baselines/stack_model.hpp"
#include "compiler/executor.hpp"

namespace {

using namespace orianna;
using baselines::PlatformResult;
using hw::AcceleratorConfig;

TEST(Platforms, RelativeSpeedOrdering)
{
    apps::BenchmarkApp bench = apps::buildQuadrotor(5);
    const auto work = bench.app.frameWork();

    const PlatformResult on_intel =
        baselines::runOnCpu(baselines::intel(), work);
    const PlatformResult on_arm =
        baselines::runOnCpu(baselines::arm(), work);
    const PlatformResult on_sw =
        baselines::runOnCpu(baselines::oriannaSw(), work);
    const PlatformResult on_gpu =
        baselines::runOnGpu(baselines::embeddedGpu(), work);
    const hw::SimResult accel =
        hw::simulate(work, AcceleratorConfig::minimal(true));

    // The paper's ordering: ARM slowest, GPU ~2x ARM, Intel ~8x ARM,
    // accelerator fastest.
    EXPECT_GT(on_arm.seconds, on_gpu.seconds);
    EXPECT_GT(on_gpu.seconds, on_intel.seconds);
    EXPECT_GT(on_intel.seconds, accel.seconds());
    // ORIANNA-SW is faster than Intel, but by less than 15%.
    EXPECT_LT(on_sw.seconds, on_intel.seconds);
    EXPECT_GT(on_sw.seconds, on_intel.seconds * 0.8);
}

TEST(Platforms, PhaseSplitSumsToTotal)
{
    apps::BenchmarkApp bench = apps::buildMobileRobot(6);
    const auto work = bench.app.frameWork();
    for (const auto &result :
         {baselines::runOnCpu(baselines::intel(), work),
          baselines::runOnGpu(baselines::embeddedGpu(), work)}) {
        const double split = result.phaseSeconds[0] +
                             result.phaseSeconds[1] +
                             result.phaseSeconds[2];
        EXPECT_NEAR(split, result.seconds, 1e-12);
        EXPECT_GT(result.energyJ, 0.0);
    }
}

TEST(VanillaHls, DenseProgramMatchesSparseSolution)
{
    // Same math, no sparsity: the dense program must produce the same
    // delta as the factor-graph program.
    apps::BenchmarkApp bench = apps::buildMobileRobot(7);
    const core::Algorithm &loc = bench.app.algorithm(0);

    comp::Executor sparse(loc.program);
    comp::Executor dense(loc.denseProgram);
    const auto d_sparse = sparse.run(loc.values);
    const auto d_dense = dense.run(loc.values);
    ASSERT_EQ(d_sparse.size(), d_dense.size());
    for (const auto &[key, delta] : d_sparse)
        EXPECT_LT(mat::maxDifference(delta, d_dense.at(key)), 1e-7);
}

TEST(VanillaHls, DenseIsSlowerOnTheSameUnits)
{
    // Fig. 16a: factor-graph sparsity is the speed difference.
    apps::BenchmarkApp bench = apps::buildQuadrotor(8);
    const AcceleratorConfig config = AcceleratorConfig::minimal(true);
    const hw::SimResult sparse =
        hw::simulate(bench.app.frameWork(), config);
    const hw::SimResult dense =
        hw::simulate(bench.app.denseFrameWork(), config);
    EXPECT_GT(dense.cycles, sparse.cycles);
    EXPECT_GT(dense.totalEnergyJ(), sparse.totalEnergyJ());
}

TEST(Stack, ThreeAcceleratorsSumResources)
{
    apps::BenchmarkApp bench = apps::buildMobileRobot(9);
    const auto work = bench.app.frameWork();
    const hw::Resources budget =
        AcceleratorConfig::minimal(true).resources() + hw::Resources{
            20000, 24000, 20, 80};
    const auto stack = baselines::runStack(work, budget);

    ASSERT_EQ(stack.configs.size(), 3u);
    // Summed resources exceed any single accelerator's budget use.
    EXPECT_GT(stack.totalResources.lut,
              stack.configs[0].resources().lut * 2);
    EXPECT_GT(stack.frameSeconds, 0.0);
    EXPECT_GT(stack.frameEnergyJ, 0.0);
    // Frame latency is the max of the parallel accelerators.
    double max_seconds = 0.0;
    for (const auto &sim : stack.perAlgorithm)
        max_seconds = std::max(max_seconds, sim.seconds());
    EXPECT_DOUBLE_EQ(stack.frameSeconds, max_seconds);
}

} // namespace
