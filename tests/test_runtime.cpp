// The runtime layer: scheduling policies in isolation, schedule /
// reference numerical equivalence, execution-context reuse, and the
// Engine/Session serving API.

#include <atomic>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "fg/factors.hpp"
#include "hw/frame_pipeline.hpp"
#include "runtime/engine.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/server_pool.hpp"

using namespace orianna;

namespace {

/** Scriptable engine state for driving schedulers standalone. */
struct FakeIssueContext final : runtime::IssueContext
{
    std::vector<bool> ready;
    std::vector<bool> freeUnit;
    std::vector<bool> done;

    explicit FakeIssueContext(std::size_t n)
        : ready(n, true), freeUnit(n, true), done(n, false)
    {
    }

    std::size_t total() const override { return ready.size(); }
    bool dataReady(std::size_t g) const override { return ready[g]; }
    bool unitFree(std::size_t g) const override { return freeUnit[g]; }
    bool completed(std::size_t g) const override { return done[g]; }
};

void
expectSameDeltas(const std::map<fg::Key, mat::Vector> &got,
                 const std::map<fg::Key, mat::Vector> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (const auto &[key, delta] : want) {
        const auto it = got.find(key);
        ASSERT_NE(it, got.end()) << "missing key " << key;
        ASSERT_EQ(it->second.size(), delta.size());
        for (std::size_t i = 0; i < delta.size(); ++i)
            EXPECT_EQ(it->second[i], delta[i])
                << "key " << key << " component " << i;
    }
}

/** The runtime_server example's odometry chain. */
fg::FactorGraph
chainGraph(const std::vector<lie::Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    return graph;
}

std::vector<lie::Pose>
chainTruth()
{
    std::vector<lie::Pose> truth;
    for (int i = 0; i < 5; ++i)
        truth.emplace_back(
            mat::Vector{0.1 * i, 0.02 * i, 0.05 * i},
            mat::Vector{0.4 * i, 0.04 * i, 0.0});
    return truth;
}

fg::Values
chainInitial(const std::vector<lie::Pose> &truth, double perturb)
{
    fg::Values initial;
    for (std::size_t i = 0; i < truth.size(); ++i)
        initial.insert(i + 1,
                       truth[i].retract(mat::Vector{
                           perturb, -perturb, perturb, -perturb,
                           perturb, -perturb}));
    return initial;
}

} // namespace

// --- Scheduler policies in isolation --------------------------------

TEST(Scheduler, OutOfOrderIssuesOldestReadyFirst)
{
    runtime::OutOfOrderScheduler scheduler;
    FakeIssueContext ctx(4);
    scheduler.reset(4);

    // Ready marks arrive out of age order; issue order must not.
    scheduler.markReady(2);
    scheduler.markReady(0);
    scheduler.markReady(3);
    EXPECT_EQ(scheduler.pick(ctx), 0u);
    EXPECT_EQ(scheduler.pick(ctx), 2u);
    EXPECT_EQ(scheduler.pick(ctx), 3u);
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
}

TEST(Scheduler, OutOfOrderSkipsInstructionsWithoutAFreeUnit)
{
    runtime::OutOfOrderScheduler scheduler;
    FakeIssueContext ctx(3);
    scheduler.reset(3);
    scheduler.markReady(0);
    scheduler.markReady(1);
    scheduler.markReady(2);

    // The oldest ready instruction stalls on its unit; younger ones
    // with free units overtake it (that is the point of OoO).
    ctx.freeUnit[0] = false;
    EXPECT_EQ(scheduler.pick(ctx), 1u);
    EXPECT_EQ(scheduler.pick(ctx), 2u);
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
    ctx.freeUnit[0] = true;
    EXPECT_EQ(scheduler.pick(ctx), 0u);
}

TEST(Scheduler, InOrderBlocksUntilThePreviousInstructionCompletes)
{
    runtime::InOrderScheduler scheduler;
    FakeIssueContext ctx(3);
    scheduler.reset(3);

    EXPECT_EQ(scheduler.pick(ctx), 0u);
    // No dispatch window: 1 must wait for 0 to *complete*, not just
    // issue.
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
    ctx.done[0] = true;
    EXPECT_EQ(scheduler.pick(ctx), 1u);

    ctx.done[1] = true;
    ctx.ready[2] = false;
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
    ctx.ready[2] = true;
    ctx.freeUnit[2] = false;
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
    ctx.freeUnit[2] = true;
    EXPECT_EQ(scheduler.pick(ctx), 2u);
    EXPECT_EQ(scheduler.pick(ctx), runtime::kNoInstruction);
}

TEST(Scheduler, ResetRestartsAFrame)
{
    runtime::InOrderScheduler in_order;
    runtime::OutOfOrderScheduler out_of_order;
    FakeIssueContext ctx(2);

    in_order.reset(2);
    EXPECT_EQ(in_order.pick(ctx), 0u);
    in_order.reset(2);
    EXPECT_EQ(in_order.pick(ctx), 0u);

    out_of_order.reset(2);
    out_of_order.markReady(1);
    out_of_order.reset(2);
    EXPECT_EQ(out_of_order.pick(ctx), runtime::kNoInstruction);
}

// --- Schedule / reference equivalence -------------------------------

// Both dispatch policies must produce bit-identical Gauss-Newton
// deltas to the in-order reference interpreter: scheduling reorders
// execution, never arithmetic (operands are final at issue).
TEST(ExecutionContext, SchedulesMatchReferenceExecutorOnEveryApp)
{
    for (apps::AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench = apps::buildApp(kind, /*seed=*/7);
        bench.app.compile();
        for (std::size_t i = 0; i < bench.app.size(); ++i) {
            const core::Algorithm &algo = bench.app.algorithm(i);
            comp::Executor reference(algo.program);
            const auto want = reference.run(algo.values);

            runtime::ExecutionContext context(
                {{&algo.program, &algo.values}});
            const auto ooo =
                context.run(hw::AcceleratorConfig::minimal(true));
            const auto io =
                context.run(hw::AcceleratorConfig::minimal(false));
            SCOPED_TRACE(std::string(apps::appName(kind)) + "/" +
                         algo.name);
            expectSameDeltas(ooo.deltas.at(0), want);
            expectSameDeltas(io.deltas.at(0), want);
        }
    }
}

TEST(ExecutionContext, WrapperSimulateMatchesContextRun)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, /*seed=*/3);
    bench.app.compile();
    const auto work = bench.app.frameWork();
    const auto config = hw::AcceleratorConfig::minimal(true);

    runtime::ExecutionContext context(work);
    const auto via_context = context.run(config);
    const auto via_wrapper = hw::simulate(work, config);

    EXPECT_EQ(via_context.cycles, via_wrapper.cycles);
    EXPECT_EQ(via_context.dynamicEnergyJ, via_wrapper.dynamicEnergyJ);
    EXPECT_EQ(via_context.memoryEnergyJ, via_wrapper.memoryEnergyJ);
    EXPECT_EQ(via_context.staticEnergyJ, via_wrapper.staticEnergyJ);
    EXPECT_EQ(via_context.unitBusyCycles, via_wrapper.unitBusyCycles);
    EXPECT_EQ(via_context.algorithmFinishCycle,
              via_wrapper.algorithmFinishCycle);
    ASSERT_EQ(via_context.deltas.size(), via_wrapper.deltas.size());
    for (std::size_t w = 0; w < via_context.deltas.size(); ++w)
        expectSameDeltas(via_context.deltas[w], via_wrapper.deltas[w]);
}

// --- Context reuse ---------------------------------------------------

// Two consecutive frames through one warm context (rebinding updated
// values in between) must match two fresh simulate() calls exactly:
// warm slot arenas and reused schedule state are invisible in the
// results.
TEST(ExecutionContext, ReusedContextMatchesFreshSimulatePerFrame)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, /*seed=*/11);
    bench.app.compile();
    const auto work = bench.app.frameWork();

    for (const bool out_of_order : {true, false}) {
        const auto config =
            hw::AcceleratorConfig::minimal(out_of_order);
        runtime::ExecutionContext context(work);

        const auto frame1 = context.run(config);
        const auto fresh1 = hw::simulate(work, config);
        EXPECT_EQ(frame1.cycles, fresh1.cycles);
        EXPECT_EQ(frame1.totalEnergyJ(), fresh1.totalEnergyJ());

        // Retract each algorithm's values and rebind for frame 2.
        std::vector<fg::Values> updated;
        updated.reserve(work.size());
        for (std::size_t w = 0; w < work.size(); ++w) {
            updated.push_back(*work[w].values);
            updated.back().retractAll(frame1.deltas[w]);
        }
        for (std::size_t w = 0; w < work.size(); ++w)
            context.bindValues(w, &updated[w]);

        const auto frame2 = context.run(config);
        auto work2 = work;
        for (std::size_t w = 0; w < work2.size(); ++w)
            work2[w].values = &updated[w];
        const auto fresh2 = hw::simulate(work2, config);

        EXPECT_EQ(frame2.cycles, fresh2.cycles);
        EXPECT_EQ(frame2.dynamicEnergyJ, fresh2.dynamicEnergyJ);
        EXPECT_EQ(frame2.memoryEnergyJ, fresh2.memoryEnergyJ);
        EXPECT_EQ(frame2.staticEnergyJ, fresh2.staticEnergyJ);
        for (std::size_t w = 0; w < work2.size(); ++w)
            expectSameDeltas(frame2.deltas[w], fresh2.deltas[w]);
    }
}

TEST(ExecutionContext, RejectsZeroUnitConfigs)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, /*seed=*/1);
    bench.app.compile();
    runtime::ExecutionContext context(bench.app.frameWork());
    auto config = hw::AcceleratorConfig::minimal(true);
    config.units[0] = 0;
    EXPECT_THROW(context.run(config), std::invalid_argument);
}

TEST(ExecutionContext, RunWithoutBoundValuesIsDiagnosed)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, /*seed=*/1);
    bench.app.compile();
    const core::Algorithm &algo = bench.app.algorithm(0);
    runtime::ExecutionContext context(
        std::vector<const comp::Program *>{&algo.program});
    EXPECT_THROW(context.run(hw::AcceleratorConfig::minimal(true)),
                 std::logic_error);
    context.bindValues(0, &algo.values);
    EXPECT_NO_THROW(context.run(hw::AcceleratorConfig::minimal(true)));
}

// A circular dependence can never become data-ready; the engine must
// say so instead of spinning.
TEST(ExecutionContext, DeadlockOnCircularDependencesIsDiagnosed)
{
    comp::Program program;
    program.name = "circular";
    program.valueSlots = 2;
    comp::Instruction a;
    a.op = comp::IsaOp::VADD;
    a.dst = 0;
    a.deps = {1};
    a.rows = 3;
    comp::Instruction b;
    b.op = comp::IsaOp::VADD;
    b.dst = 1;
    b.deps = {0};
    b.rows = 3;
    program.instructions = {a, b};

    fg::Values values;
    runtime::ExecutionContext context({{&program, &values}});
    EXPECT_THROW(context.run(hw::AcceleratorConfig::minimal(true)),
                 std::logic_error);
    EXPECT_THROW(context.run(hw::AcceleratorConfig::minimal(false)),
                 std::logic_error);
}

// --- Engine / Session ------------------------------------------------

TEST(Engine, SharesCompiledProgramsBetweenEqualGraphs)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    const auto first = engine.program(graph, chainInitial(truth, 0.01));
    const auto second = engine.program(graph, chainInitial(truth, 0.05));
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(engine.stats().compiles, 1u);
    EXPECT_EQ(engine.stats().cacheHits, 1u);
    EXPECT_EQ(engine.cachedPrograms(), 1u);

    // Different measurements bake different LOADC payloads: that is a
    // different program, not a cache hit.
    auto shifted = truth;
    shifted.back() = shifted.back().retract(
        mat::Vector{0.1, 0.0, 0.0, 0.0, 0.0, 0.0});
    const auto third =
        engine.program(chainGraph(shifted), chainInitial(truth, 0.01));
    EXPECT_NE(first.get(), third.get());
    EXPECT_EQ(engine.stats().compiles, 2u);
    EXPECT_EQ(engine.cachedPrograms(), 2u);
}

TEST(Engine, SessionsIterateThroughTheSharedProgram)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);

    // Exact compile counts are an fp64 contract: an fp32 engine also
    // compiles the reference fallback (tested in test_precision.cpp),
    // so pin the datapath against ORIANNA_PRECISION.
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp64;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    runtime::Session a = engine.session(graph, chainInitial(truth, 0.02));
    runtime::Session b = engine.session(graph, chainInitial(truth, 0.04));
    EXPECT_EQ(engine.stats().compiles, 1u);
    EXPECT_EQ(engine.stats().cacheHits, 1u);
    EXPECT_EQ(&a.program(), &b.program());

    const double before_a = graph.totalError(a.values());
    const double before_b = graph.totalError(b.values());
    a.iterate(3);
    b.iterate(3);
    EXPECT_EQ(a.frames(), 3u);
    EXPECT_GT(a.totals().cycles, 0u);
    EXPECT_LT(graph.totalError(a.values()), before_a);
    EXPECT_LT(graph.totalError(b.values()), before_b);
}

// Session::iterate is the accelerated Gauss-Newton loop; it must
// track the reference interpreter (run + retract per step) exactly.
TEST(Session, IterateMatchesReferenceInterpreterLoop)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::Manipulator, /*seed=*/5);
    bench.app.compile();
    const core::Algorithm &algo = bench.app.algorithm(0);
    constexpr std::size_t kSteps = 3;

    runtime::Session session(algo.program, algo.values,
                             hw::AcceleratorConfig::minimal(true));
    session.iterate(kSteps);

    fg::Values reference = algo.values;
    comp::Executor executor(algo.program);
    for (std::size_t step = 0; step < kSteps; ++step)
        reference.retractAll(executor.run(reference));

    for (fg::Key key : reference.keys()) {
        if (reference.isPose(key)) {
            const lie::Pose &got = session.values().pose(key);
            const lie::Pose &want = reference.pose(key);
            const mat::Vector gap = got.localCoordinates(want);
            for (std::size_t i = 0; i < gap.size(); ++i)
                EXPECT_EQ(gap[i], 0.0) << "pose " << key;
        } else {
            const mat::Vector &got = session.values().vector(key);
            const mat::Vector &want = reference.vector(key);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                EXPECT_EQ(got[i], want[i]) << "vector " << key;
        }
    }
    EXPECT_EQ(session.frames(), kSteps);
}

TEST(Session, StepScaleDampsTheUpdate)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values initial = chainInitial(truth, 0.05);

    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    const auto program = engine.program(graph, initial);

    runtime::Session full(program, initial,
                          hw::AcceleratorConfig::minimal(true), 1.0);
    runtime::Session damped(program, initial,
                            hw::AcceleratorConfig::minimal(true), 0.5);
    full.step();
    damped.step();
    // A half step moves less than the full Gauss-Newton step.
    const mat::Vector gap_full =
        initial.pose(1).localCoordinates(full.values().pose(1));
    const mat::Vector gap_damped =
        initial.pose(1).localCoordinates(damped.values().pose(1));
    double norm_full = 0.0;
    double norm_damped = 0.0;
    for (std::size_t i = 0; i < gap_full.size(); ++i) {
        norm_full += gap_full[i] * gap_full[i];
        norm_damped += gap_damped[i] * gap_damped[i];
    }
    EXPECT_LT(norm_damped, norm_full);
}

// --- Frame pipeline reuse --------------------------------------------

TEST(FramePipeline, RepeatedRunsAreIdentical)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, /*seed=*/9);
    bench.app.compile();

    std::vector<hw::PeriodicStream> streams;
    for (std::size_t i = 0; i < bench.app.size(); ++i) {
        const core::Algorithm &algo = bench.app.algorithm(i);
        streams.push_back(
            {&algo.program, &algo.values, algo.rateHz, 0.0});
    }
    const auto config = hw::AcceleratorConfig::minimal(true);

    hw::FramePipeline pipeline(streams, config);
    const auto first = pipeline.run(0.02);
    const auto second = pipeline.run(0.02);
    const auto one_shot = hw::simulatePipeline(streams, config, 0.02);

    ASSERT_EQ(first.streams.size(), second.streams.size());
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.cycles, one_shot.cycles);
    for (std::size_t s = 0; s < first.streams.size(); ++s) {
        EXPECT_EQ(first.streams[s].frames, second.streams[s].frames);
        EXPECT_EQ(first.streams[s].meanLatencyS,
                  second.streams[s].meanLatencyS);
        EXPECT_EQ(first.streams[s].maxLatencyS,
                  one_shot.streams[s].maxLatencyS);
    }
}

// --- Graph fingerprints ----------------------------------------------

TEST(Fingerprint, DeterministicAcrossRebuilds)
{
    const auto truth = chainTruth();
    const fg::Values shapes = chainInitial(truth, 0.01);

    // Same call twice, and a structurally identical graph rebuilt
    // from scratch: one fingerprint.
    const std::uint64_t a =
        runtime::graphFingerprint(chainGraph(truth), shapes);
    const std::uint64_t b =
        runtime::graphFingerprint(chainGraph(truth), shapes);
    EXPECT_EQ(a, b);

    // Initial values do not enter the fingerprint, only shapes do: a
    // different starting guess shares the compiled program.
    EXPECT_EQ(a, runtime::graphFingerprint(chainGraph(truth),
                                           chainInitial(truth, 0.08)));
}

TEST(Fingerprint, SensitiveToPayloadsNoiseOrderingAndTag)
{
    const auto truth = chainTruth();
    const fg::Values shapes = chainInitial(truth, 0.01);
    const std::uint64_t base =
        runtime::graphFingerprint(chainGraph(truth), shapes);

    // Different measurement constants bake different LOADC payloads.
    auto shifted = truth;
    shifted.back() = shifted.back().retract(
        mat::Vector{0.05, 0.0, 0.0, 0.0, 0.0, 0.0});
    EXPECT_NE(base,
              runtime::graphFingerprint(chainGraph(shifted), shapes));

    // Different noise models scale the whitened system differently.
    fg::FactorGraph reweighted;
    reweighted.emplace<fg::PriorFactor>(1, truth[0],
                                        fg::isotropicSigmas(6, 0.02));
    for (std::size_t i = 1; i < truth.size(); ++i)
        reweighted.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    EXPECT_NE(base, runtime::graphFingerprint(reweighted, shapes));

    // Factor registration order changes the instruction stream, so it
    // is (conservatively) a different program.
    fg::FactorGraph reordered;
    for (std::size_t i = 1; i < truth.size(); ++i)
        reordered.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    reordered.emplace<fg::PriorFactor>(1, truth[0],
                                       fg::isotropicSigmas(6, 0.01));
    EXPECT_NE(base, runtime::graphFingerprint(reordered, shapes));

    // The coarse-grained OoO algorithm tag is part of the program.
    EXPECT_NE(base, runtime::graphFingerprint(chainGraph(truth), shapes,
                                              /*algorithm_tag=*/1));
}

// --- ServerPool ------------------------------------------------------

TEST(ServerPool, ParallelForRunsEveryIndexExactlyOnce)
{
    runtime::ServerPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr std::size_t kCount = 257; // Not a multiple of 4.
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ServerPool, ReportsWorkerIdsAndPerThreadTotals)
{
    EXPECT_EQ(runtime::ServerPool::currentWorker(), -1);

    runtime::ServerPool pool(3);
    std::atomic<int> bad_ids{0};
    pool.parallelFor(64, [&pool, &bad_ids](std::size_t) {
        const int w = runtime::ServerPool::currentWorker();
        if (w < 0 || w >= static_cast<int>(pool.threads()))
            bad_ids.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(bad_ids.load(), 0);
    EXPECT_EQ(runtime::ServerPool::currentWorker(), -1);

    const auto totals = pool.tasksExecuted();
    ASSERT_EQ(totals.size(), 3u);
    std::uint64_t sum = 0;
    for (std::uint64_t t : totals)
        sum += t;
    EXPECT_EQ(sum, 64u);
}

TEST(ServerPool, PropagatesExceptionsAndSurvivesThem)
{
    runtime::ServerPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [](std::size_t i) {
                                      if (i == 5)
                                          throw std::runtime_error(
                                              "task 5 failed");
                                  }),
                 std::runtime_error);

    // The failed batch drained completely; the pool keeps serving.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&ran](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ServerPool, ZeroCountIsANoOp)
{
    runtime::ServerPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&called](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

// --- Concurrent serving ----------------------------------------------

TEST(Engine, ConcurrentRequestsOfOneGraphCompileOnce)
{
    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    const fg::Values shapes = chainInitial(truth, 0.01);

    // Pinned fp64: the compile-log fingerprint below is the unsalted
    // graph fingerprint (an fp32 engine would salt the cache key).
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp64;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    constexpr std::size_t kThreads = 8;
    std::vector<std::shared_ptr<const comp::Program>> got(kThreads);
    {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&engine, &graph, &shapes, &got, t] {
                got[t] = engine.program(graph, shapes);
            });
        for (std::thread &thread : threads)
            thread.join();
    }

    // Single-flight: one compile, everyone shares one Program object.
    for (std::size_t t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[t], nullptr);
        EXPECT_EQ(got[t].get(), got[0].get());
    }
    EXPECT_EQ(engine.stats().compiles, 1u);
    EXPECT_EQ(engine.stats().cacheHits, kThreads - 1);
    EXPECT_EQ(engine.cachedPrograms(), 1u);

    ASSERT_EQ(engine.compileLog().size(), 1u);
    EXPECT_EQ(engine.compileLog()[0].fingerprint,
              runtime::graphFingerprint(graph, shapes));
    EXPECT_GT(engine.compileLog()[0].instructions, 0u);
}

TEST(Engine, ConcurrentSessionsMatchSequentialByteForByte)
{
    // Two distinct mission graphs (different measurements), many
    // sessions each, served concurrently through one engine: every
    // session must land on exactly the values the sequential loop
    // produces, because parallelism is across sessions, never inside
    // a frame.
    const auto truth = chainTruth();
    auto shifted = truth;
    shifted.back() = shifted.back().retract(
        mat::Vector{0.05, 0.0, 0.0, 0.0, 0.0, 0.0});
    const std::vector<fg::FactorGraph> graphs = [&] {
        std::vector<fg::FactorGraph> out;
        out.push_back(chainGraph(truth));
        out.push_back(chainGraph(shifted));
        return out;
    }();

    constexpr std::size_t kSessions = 12;
    constexpr std::size_t kFrames = 3;
    auto solve = [&](runtime::ServerPool *pool) {
        runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
        std::vector<fg::Values> finals(kSessions);
        auto one = [&](std::size_t i) {
            runtime::Session session = engine.session(
                graphs[i % graphs.size()],
                chainInitial(truth, 0.01 * (1.0 + (i % 3))));
            session.iterate(kFrames);
            finals[i] = session.values();
        };
        if (pool != nullptr)
            pool->parallelFor(kSessions, one);
        else
            for (std::size_t i = 0; i < kSessions; ++i)
                one(i);
        return finals;
    };

    const std::vector<fg::Values> sequential = solve(nullptr);
    runtime::ServerPool pool(4);
    const std::vector<fg::Values> concurrent = solve(&pool);

    ASSERT_EQ(concurrent.size(), sequential.size());
    for (std::size_t i = 0; i < kSessions; ++i) {
        for (fg::Key key : sequential[i].keys()) {
            const lie::Pose &want = sequential[i].pose(key);
            const lie::Pose &got = concurrent[i].pose(key);
            for (std::size_t c = 0; c < want.phi().size(); ++c)
                EXPECT_EQ(got.phi()[c], want.phi()[c])
                    << "session " << i << " pose " << key;
            for (std::size_t c = 0; c < want.t().size(); ++c)
                EXPECT_EQ(got.t()[c], want.t()[c])
                    << "session " << i << " pose " << key;
        }
    }
}
