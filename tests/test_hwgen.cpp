// Tests for constraint-based hardware generation (Sec. 6.2 / Equ. 5).

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "fg/factors.hpp"
#include "hwgen/generator.hpp"
#include "runtime/server_pool.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::FactorGraph;
using fg::Values;
using hw::AcceleratorConfig;
using hw::Resources;
using hwgen::Objective;
using lie::Pose;

struct Fixture
{
    FactorGraph graph;
    Values values;
    comp::Program program;
};

Fixture
makeFixture(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    Fixture f;
    Pose current = Pose::identity(3);
    for (std::size_t i = 0; i < n; ++i) {
        f.values.insert(i,
                        current.retract(randomVector(6, rng, 0.05)));
        Pose step = randomPose(3, rng, 0.2, 1.0);
        if (i + 1 < n)
            f.graph.emplace<fg::BetweenFactor>(
                i, i + 1, step, fg::isotropicSigmas(6, 0.1));
        current = current.oplus(step);
    }
    f.graph.emplace<fg::PriorFactor>(0u, Pose::identity(3),
                                     fg::isotropicSigmas(6, 0.01));
    f.program = comp::compileGraph(f.graph, f.values);
    return f;
}

Resources
budgetTimes(double scale)
{
    const Resources minimal =
        AcceleratorConfig::minimal(true).resources();
    return {static_cast<std::size_t>(minimal.lut * scale),
            static_cast<std::size_t>(minimal.ff * scale),
            static_cast<std::size_t>(minimal.bram * scale),
            static_cast<std::size_t>(minimal.dsp * scale)};
}

TEST(Hwgen, GeneratedFitsBudgetAndImproves)
{
    Fixture f = makeFixture(8, 51);
    const Resources budget = budgetTimes(3.0);
    auto gen = hwgen::generate({{&f.program, &f.values}}, budget);

    EXPECT_TRUE(gen.config.resources().fitsIn(budget));
    ASSERT_GE(gen.trajectory.size(), 1u);
    // The final design is at least as fast as the starting point.
    EXPECT_LE(gen.result.cycles, gen.trajectory.front().result.cycles);
    // The greedy trajectory is monotone in the objective.
    for (std::size_t i = 1; i < gen.trajectory.size(); ++i)
        EXPECT_LE(hwgen::objectiveValue(gen.trajectory[i].result,
                                        Objective::AvgLatency),
                  hwgen::objectiveValue(gen.trajectory[i - 1].result,
                                        Objective::AvgLatency));
}

TEST(Hwgen, GeneratedBeatsManualUnderSameBudget)
{
    // The Fig. 19 claim: workload-driven replication beats uniform
    // replication at equal resources.
    Fixture f = makeFixture(10, 52);
    const Resources budget = budgetTimes(2.5);

    auto gen = hwgen::generate({{&f.program, &f.values}}, budget);
    const AcceleratorConfig manual = hwgen::manualDesign(budget);
    ASSERT_TRUE(manual.resources().fitsIn(budget));
    auto manual_sim = hw::simulate({{&f.program, &f.values}}, manual);

    EXPECT_LE(gen.result.cycles, manual_sim.cycles);
}

TEST(Hwgen, LargerBudgetNeverHurts)
{
    Fixture f = makeFixture(8, 53);
    auto small = hwgen::generate({{&f.program, &f.values}},
                                 budgetTimes(1.5));
    auto large = hwgen::generate({{&f.program, &f.values}},
                                 budgetTimes(4.0));
    EXPECT_LE(large.result.cycles, small.result.cycles);
    EXPECT_GE(large.config.resources().lut,
              small.config.resources().lut);
}

TEST(Hwgen, EnergyObjectiveMinimizesEnergy)
{
    Fixture f = makeFixture(8, 54);
    const Resources budget = budgetTimes(3.0);
    auto for_energy = hwgen::generate({{&f.program, &f.values}}, budget,
                                      Objective::Energy);
    auto for_latency = hwgen::generate({{&f.program, &f.values}},
                                       budget, Objective::AvgLatency);
    EXPECT_LE(for_energy.result.totalEnergyJ(),
              for_latency.result.totalEnergyJ() * 1.001);
}

TEST(Hwgen, TinyBudgetRejected)
{
    Fixture f = makeFixture(4, 55);
    EXPECT_THROW(
        hwgen::generate({{&f.program, &f.values}}, Resources{1, 1, 1, 1}),
        std::invalid_argument);
}

TEST(Hwgen, PoolParallelGenerateMatchesSequential)
{
    // Candidate evaluation fans out across pool workers, but the
    // greedy selection must walk the exact same trajectory as the
    // sequential loop.
    Fixture f = makeFixture(8, 56);
    const Resources budget = budgetTimes(3.0);

    auto sequential = hwgen::generate({{&f.program, &f.values}}, budget);
    runtime::ServerPool pool(4);
    auto parallel = hwgen::generate({{&f.program, &f.values}}, budget,
                                    Objective::AvgLatency, true, &pool);

    EXPECT_EQ(parallel.config.units, sequential.config.units);
    EXPECT_EQ(parallel.result.cycles, sequential.result.cycles);
    EXPECT_EQ(parallel.result.totalEnergyJ(),
              sequential.result.totalEnergyJ());
    ASSERT_EQ(parallel.trajectory.size(), sequential.trajectory.size());
    for (std::size_t i = 0; i < parallel.trajectory.size(); ++i) {
        EXPECT_EQ(parallel.trajectory[i].config.units,
                  sequential.trajectory[i].config.units);
        EXPECT_EQ(parallel.trajectory[i].result.cycles,
                  sequential.trajectory[i].result.cycles);
    }
}

TEST(Hwgen, ManualDesignUniform)
{
    const AcceleratorConfig manual =
        hwgen::manualDesign(budgetTimes(3.0));
    for (std::size_t k = 1; k < hw::kUnitKindCount; ++k)
        EXPECT_EQ(manual.units[k], manual.units[0]);
    EXPECT_GE(manual.units[0], 1u);
}

} // namespace
