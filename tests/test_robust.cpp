// Tests for the Huber robust kernel: outlier rejection in software,
// and parity with the compiled accelerator program.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "fg/optimizer.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Vector;

TEST(Robust, WeightKicksInBeyondThreshold)
{
    Values values;
    values.insert(1, Pose(Vector{0.0}, Vector{3.0, 0.0}));
    auto factor = std::make_shared<fg::GPSFactor>(
        1, Vector{0.0, 0.0}, fg::isotropicSigmas(2, 1.0));
    const Vector plain = factor->whitenedError(values);
    EXPECT_NEAR(plain.norm(), 3.0, 1e-12);

    factor->setRobust(1.0);
    const Vector robust = factor->whitenedError(values);
    // |e| = 3, k = 1: scaled by sqrt(1/3).
    EXPECT_NEAR(robust.norm(), 3.0 * std::sqrt(1.0 / 3.0), 1e-12);
    // Inside the threshold nothing changes.
    values.update(1, Pose(Vector{0.0}, Vector{0.5, 0.0}));
    EXPECT_NEAR(factor->whitenedError(values).norm(), 0.5, 1e-12);

    EXPECT_THROW(factor->setRobust(0.0), std::invalid_argument);
}

TEST(Robust, JacobiansScaleConsistently)
{
    std::mt19937 rng(111);
    Values values;
    values.insert(1, randomPose(2, rng, 0.3, 4.0));
    auto factor = std::make_shared<fg::GPSFactor>(
        1, Vector{0.0, 0.0}, fg::isotropicSigmas(2, 0.5));
    const auto plain = factor->whitenedJacobians(values);
    factor->setRobust(0.8);
    const double w = factor->whitenedError(values).norm() /
                     [&] {
                         auto copy = std::make_shared<fg::GPSFactor>(
                             1, Vector{0.0, 0.0},
                             fg::isotropicSigmas(2, 0.5));
                         return copy->whitenedError(values).norm();
                     }();
    const auto robust = factor->whitenedJacobians(values);
    for (const auto &[key, j] : plain)
        EXPECT_LT(mat::maxDifference(j * w, robust.at(key)), 1e-10);
}

TEST(Robust, OutlierRejectedInOptimization)
{
    // Ten consistent GPS fixes plus one gross outlier: the robust
    // solve lands on the consensus, the plain solve is dragged off.
    Values init;
    const Vector truth{1.0, 2.0};
    init.insert(1, Pose(Vector{0.0}, Vector{0.0, 0.0}));

    auto build = [&](bool robust) {
        FactorGraph graph;
        std::mt19937 rng(5);
        for (int i = 0; i < 10; ++i) {
            auto gps = std::make_shared<fg::GPSFactor>(
                1, truth + randomVector(2, rng, 0.01),
                fg::isotropicSigmas(2, 0.1));
            if (robust)
                gps->setRobust(1.0);
            graph.add(gps);
        }
        auto outlier = std::make_shared<fg::GPSFactor>(
            1, Vector{30.0, -20.0}, fg::isotropicSigmas(2, 0.1));
        if (robust)
            outlier->setRobust(1.0);
        graph.add(outlier);
        graph.emplace<fg::PriorFactor>(1, Pose::identity(2),
                                       fg::isotropicSigmas(3, 10.0));
        return graph;
    };

    auto plain = fg::optimize(build(false), init);
    auto robust = fg::optimize(build(true), init);
    const double plain_err =
        (plain.values.pose(1).t() - truth).norm();
    const double robust_err =
        (robust.values.pose(1).t() - truth).norm();
    EXPECT_GT(plain_err, 1.0);    // Dragged toward the outlier.
    EXPECT_LT(robust_err, 0.15);  // Consensus wins.
}

TEST(Robust, CompiledProgramMatchesSoftware)
{
    std::mt19937 rng(112);
    Values values;
    values.insert(1, randomPose(2, rng, 0.3, 2.0));
    values.insert(2, randomPose(2, rng, 0.3, 2.0));

    FactorGraph graph;
    auto between = std::make_shared<fg::BetweenFactor>(
        1, 2, randomPose(2, rng, 0.3, 2.0),
        fg::isotropicSigmas(3, 0.1));
    between->setRobust(0.7);
    graph.add(between);
    auto gps = std::make_shared<fg::GPSFactor>(
        1, Vector{5.0, 5.0}, fg::isotropicSigmas(2, 0.2));
    gps->setRobust(1.2);
    graph.add(gps);
    graph.emplace<fg::PriorFactor>(1, values.pose(1),
                                   fg::isotropicSigmas(3, 0.01));
    graph.emplace<fg::PriorFactor>(2, values.pose(2),
                                   fg::isotropicSigmas(3, 0.5));

    const auto program = comp::compileGraph(graph, values);
    comp::Executor executor(program);
    const auto hw_delta = executor.run(values);
    const auto sw_delta = fg::solveLinearSystem(
        graph.linearize(values), graph.allKeys());
    for (const auto &[key, sw] : sw_delta)
        EXPECT_LT(mat::maxDifference(hw_delta.at(key), sw), 1e-9)
            << "key " << key;
}

} // namespace
