// Tests for the extension features: Range and ArmCollision factors
// (the Norm DFG primitive and forward kinematics over Tbl. 3
// primitives), marginal covariance recovery, fixed-lag
// marginalization, and the Graphviz exports.

#include <cmath>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "fg/dot.hpp"
#include "fg/factors.hpp"
#include "fg/incremental.hpp"
#include "fg/marginals.hpp"
#include "fg/optimizer.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::expectJacobiansMatch;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::FactorGraph;
using fg::Key;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::Vector;

// --- Range factor -----------------------------------------------------------

TEST(RangeFactor, ErrorAndJacobians)
{
    std::mt19937 rng(81);
    Values values;
    Pose pose = randomPose(3, rng, 0.4, 2.0);
    Vector landmark = randomVector(3, rng, 4.0);
    values.insert(1, pose);
    values.insert(2, landmark);

    const double truth = (landmark - pose.t()).norm();
    fg::RangeFactor factor(1, 2, truth - 0.3, 0.1);
    EXPECT_NEAR(factor.error(values)[0], 0.3, 1e-12);
    expectJacobiansMatch(factor, values);
}

TEST(RangeFactor, TrilaterationLocalizes)
{
    // Three beacons with exact ranges pin down a 2-D position.
    Values values;
    const Vector truth_t{1.5, -0.8};
    Pose truth(Vector{0.3}, truth_t);
    std::vector<Vector> beacons{Vector{0.0, 0.0}, Vector{4.0, 0.0},
                                Vector{0.0, 4.0}};
    FactorGraph graph;
    for (std::size_t b = 0; b < beacons.size(); ++b) {
        values.insert(10 + b, beacons[b]);
        graph.emplace<fg::VectorPriorFactor>(
            10 + b, beacons[b], fg::isotropicSigmas(2, 1e-4));
        graph.emplace<fg::RangeFactor>(
            1, 10 + b, (beacons[b] - truth_t).norm(), 0.01);
    }
    // The orientation is unobservable by ranges; pin it weakly.
    graph.emplace<fg::PriorFactor>(1, truth,
                                   fg::isotropicSigmas(3, 1.0));
    values.insert(1, truth.retract(Vector{0.1, 0.4, -0.3}));

    auto result = fg::optimize(graph, values);
    EXPECT_LT((result.values.pose(1).t() - truth_t).norm(), 1e-4);
}

TEST(RangeFactor, CompilesAndMatchesSolver)
{
    std::mt19937 rng(82);
    Values values;
    Pose pose = randomPose(2, rng, 0.3, 1.0);
    values.insert(1, pose);
    values.insert(2, randomVector(2, rng, 3.0));
    FactorGraph graph;
    graph.emplace<fg::RangeFactor>(1, 2, 2.0, 0.1);
    graph.emplace<fg::PriorFactor>(1, pose,
                                   fg::isotropicSigmas(3, 0.01));
    graph.emplace<fg::VectorPriorFactor>(2, values.vector(2),
                                         fg::isotropicSigmas(2, 0.5));

    const auto program = comp::compileGraph(graph, values);
    comp::Executor executor(program);
    const auto hw_delta = executor.run(values);
    const auto sw_delta = fg::solveLinearSystem(
        graph.linearize(values), graph.allKeys());
    for (const auto &[key, sw] : sw_delta)
        EXPECT_LT(mat::maxDifference(hw_delta.at(key), sw), 1e-8);
}

// --- Arm collision factor ---------------------------------------------------

TEST(ArmCollision, ForwardKinematicsCorrect)
{
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{10.0, 10.0}, 0.1); // Far away: inactive.
    const double l1 = 1.0;
    const double l2 = 0.7;
    fg::ArmCollisionFactor factor(1, l1, l2, map, 0.2, 0.5);

    Values values;
    values.insert(1, Vector{0.6, -0.4, 0.0, 0.0});
    // With the obstacle far away the hinge is zero...
    EXPECT_EQ(factor.error(values).maxAbs(), 0.0);

    // ...and an obstacle exactly at the analytic tip position
    // activates it maximally.
    const double q1 = 0.6;
    const double q12 = 0.6 - 0.4;
    Vector tip{l1 * std::cos(q1) + l2 * std::cos(q12),
               l1 * std::sin(q1) + l2 * std::sin(q12)};
    auto hit = std::make_shared<fg::SdfMap>();
    hit->addObstacle(tip, 0.3);
    fg::ArmCollisionFactor hitting(1, l1, l2, hit, 0.2, 0.5);
    const Vector e = hitting.error(values);
    EXPECT_NEAR(e[1], 0.2 + 0.3, 1e-9); // Tip at the center: d = -r.
}

TEST(ArmCollision, JacobiansMatchFiniteDifferences)
{
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{1.2, 0.6}, 0.4);
    fg::ArmCollisionFactor factor(1, 1.0, 0.8, map, 0.5, 0.3);
    Values values;
    values.insert(1, Vector{0.5, 0.3, 0.1, -0.1});
    // Both hinges active at this configuration?  Either way the
    // Jacobian check must hold.
    expectJacobiansMatch(factor, values, 1e-5);
}

TEST(ArmCollision, PlansAroundWorkspaceObstacle)
{
    // Joint-space trajectory optimization with workspace collision
    // checking through the compiled-down forward kinematics.
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{1.35, 0.45}, 0.25);
    const double l1 = 1.0;
    const double l2 = 0.8;

    FactorGraph graph;
    Values init;
    const std::size_t steps = 10;
    const Vector start{-0.3, 0.2, 0.0, 0.0};
    const Vector goal{0.9, -0.3, 0.0, 0.0};
    for (std::size_t k = 0; k < steps; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(steps - 1);
        Vector q = start * (1.0 - s) + goal * s;
        init.insert(k, q);
        if (k + 1 < steps)
            graph.emplace<fg::SmoothFactor>(k, k + 1, 2, 0.2,
                                            fg::isotropicSigmas(4, 0.3));
        graph.emplace<fg::ArmCollisionFactor>(k, l1, l2, map, 0.25,
                                              0.1);
        graph.emplace<fg::VectorPriorFactor>(k, q,
                                             fg::isotropicSigmas(4, 2.0));
    }
    graph.emplace<fg::VectorPriorFactor>(0u, start,
                                         fg::isotropicSigmas(4, 0.01));
    graph.emplace<fg::VectorPriorFactor>(steps - 1, goal,
                                         fg::isotropicSigmas(4, 0.01));

    fg::GaussNewtonParams params;
    params.stepScale = 0.5;
    params.maxIterations = 40;
    auto result = fg::optimize(graph, init, params);

    // Every configuration keeps the elbow and tip clear.
    for (std::size_t k = 0; k < steps; ++k) {
        const Vector &q = result.values.vector(k);
        const double q1 = q[0];
        const double q12 = q[0] + q[1];
        Vector elbow{l1 * std::cos(q1), l1 * std::sin(q1)};
        Vector tip{elbow[0] + l2 * std::cos(q12),
                   elbow[1] + l2 * std::sin(q12)};
        EXPECT_GT(map->distance(elbow), 0.0) << "elbow step " << k;
        EXPECT_GT(map->distance(tip), 0.0) << "tip step " << k;
    }
}

// --- Marginals --------------------------------------------------------------

TEST(Marginals, PriorOnlyMatchesNoise)
{
    // A single prior: the marginal covariance is sigma^2 I.
    Values values;
    values.insert(1, Vector{0.0, 0.0});
    FactorGraph graph;
    graph.emplace<fg::VectorPriorFactor>(1, Vector(2),
                                         fg::isotropicSigmas(2, 0.3));
    fg::Marginals marginals(graph.linearize(values), {1});
    const Matrix cov = marginals.marginalCovariance(1);
    EXPECT_NEAR(cov(0, 0), 0.09, 1e-12);
    EXPECT_NEAR(cov(1, 1), 0.09, 1e-12);
    EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(marginals.sigmas(1)[0], 0.3, 1e-12);
}

TEST(Marginals, UncertaintyGrowsAlongChain)
{
    // Odometry chain anchored at one end: covariance grows with the
    // distance from the anchor (the dead-reckoning random walk).
    Values values;
    FactorGraph graph;
    const std::size_t n = 6;
    Pose current = Pose::identity(2);
    for (std::size_t i = 0; i < n; ++i) {
        values.insert(i, current);
        if (i + 1 < n)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, Pose(Vector{0.0}, Vector{1.0, 0.0}),
                fg::isotropicSigmas(3, 0.1));
        current = current.oplus(Pose(Vector{0.0}, Vector{1.0, 0.0}));
    }
    graph.emplace<fg::PriorFactor>(0u, Pose::identity(2),
                                   fg::isotropicSigmas(3, 0.01));
    fg::Marginals marginals(graph.linearize(values), graph.allKeys());
    double previous = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double trace =
            marginals.marginalCovariance(i)(1, 1) +
            marginals.marginalCovariance(i)(2, 2);
        EXPECT_GT(trace, previous) << "pose " << i;
        previous = trace;
    }
    // Cross-covariance with the anchor is nearly zero; adjacent poses
    // correlate strongly.
    const Matrix far = marginals.jointCovariance(0, n - 1);
    const Matrix near = marginals.jointCovariance(n - 2, n - 1);
    EXPECT_LT(far.maxAbs(), near.maxAbs());
}

TEST(Marginals, RankDeficientRejected)
{
    Values values;
    values.insert(1, Vector{0.0, 0.0});
    values.insert(2, Vector{0.0, 0.0});
    FactorGraph graph;
    graph.emplace<fg::VectorPriorFactor>(1, Vector(2),
                                         fg::isotropicSigmas(2, 1.0));
    // Variable 2 unconstrained except through a difference factor
    // missing... actually build the deficient system directly:
    fg::LinearSystem system = graph.linearize(values);
    system.dofs[2] = 2; // Columns with no rows touching them.
    EXPECT_THROW(fg::Marginals(system, {1, 2}), std::runtime_error);
}

// --- Fixed-lag marginalization ----------------------------------------------

TEST(FixedLag, WindowStaysBoundedAndTracksFullSmoother)
{
    std::mt19937 rng(83);
    fg::IncrementalParams params;
    params.relinearizeInterval = 5;
    fg::IncrementalSmoother lagged(params);
    fg::IncrementalSmoother full(params);

    Pose truth = Pose::identity(2);
    for (auto *s : {&lagged, &full}) {
        s->addVariable(0u, truth);
        s->addFactor(std::make_shared<fg::PriorFactor>(
            0u, truth, fg::isotropicSigmas(3, 0.01)));
        s->update();
    }

    std::vector<Pose> all_truth{truth};
    const std::size_t frames = 25;
    const std::size_t lag = 8;
    std::size_t window_start = 0;
    for (std::size_t i = 1; i < frames; ++i) {
        const Pose step(Vector{0.05}, Vector{0.4, 0.0});
        const Pose odom = step.retract(randomVector(3, rng, 0.01));
        truth = all_truth.back().oplus(step);
        all_truth.push_back(truth);
        for (auto *s : {&lagged, &full}) {
            s->addVariable(
                i, s->estimate().pose(i - 1).oplus(odom));
            s->addFactor(std::make_shared<fg::BetweenFactor>(
                i - 1, i, odom, fg::isotropicSigmas(3, 0.02)));
            s->update();
        }
        if (i - window_start >= lag) {
            lagged.marginalizeLeading(2);
            window_start += 2;
        }
        // Only the window variables remain in the lagged smoother.
        EXPECT_LE(lagged.estimate().size(), lag + 1);
        EXPECT_FALSE(lagged.estimate().exists(
            window_start == 0 ? 9999 : window_start - 1));
    }
    // Fixed-lag estimates of the recent states agree with the full
    // smoother (marginalization preserved the information), and both
    // stay within dead-reckoning error of the truth.
    for (std::size_t i = frames - 3; i < frames; ++i) {
        EXPECT_LT(lie::poseDistance(lagged.estimate().pose(i),
                                    full.estimate().pose(i)),
                  0.02)
            << "pose " << i;
        EXPECT_LT((lagged.estimate().pose(i).t() - all_truth[i].t())
                      .norm(),
                  0.6)
            << "pose " << i;
    }
}

TEST(FixedLag, ErrorsRejected)
{
    fg::IncrementalSmoother smoother;
    smoother.addVariable(0u, Pose::identity(2));
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, Pose::identity(2), fg::isotropicSigmas(3, 0.1)));
    smoother.update();
    EXPECT_THROW(smoother.marginalizeLeading(0), std::invalid_argument);
    EXPECT_THROW(smoother.marginalizeLeading(1), std::invalid_argument);
    smoother.addFactor(std::make_shared<fg::PriorFactor>(
        0u, Pose::identity(2), fg::isotropicSigmas(3, 0.1)));
    EXPECT_THROW(smoother.marginalizeLeading(1), std::invalid_argument);
}

// --- DOT export -------------------------------------------------------------

TEST(Dot, FactorGraphRendering)
{
    Values values;
    FactorGraph graph;
    graph.emplace<fg::BetweenFactor>(1, 2, Pose::identity(2),
                                     fg::isotropicSigmas(3, 1.0));
    graph.emplace<fg::PriorFactor>(1, Pose::identity(2),
                                   fg::isotropicSigmas(3, 1.0));
    const std::string dot = fg::graphToDot(graph);
    EXPECT_NE(dot.find("graph factorgraph"), std::string::npos);
    EXPECT_NE(dot.find("v1"), std::string::npos);
    EXPECT_NE(dot.find("Between"), std::string::npos);
    EXPECT_NE(dot.find("f0 -- v1"), std::string::npos);
}

TEST(Dot, DfgRendering)
{
    fg::Dfg dfg;
    auto a = dfg.inputPose(1);
    auto b = dfg.inputPose(2);
    dfg.addPoseOutput(dfg.ominus(a, b));
    const std::string dot = fg::dfgToDot(dfg, "between");
    EXPECT_NE(dot.find("digraph between"), std::string::npos);
    EXPECT_NE(dot.find("RT"), std::string::npos);
    EXPECT_NE(dot.find("Log"), std::string::npos);
    EXPECT_NE(dot.find("palegreen"), std::string::npos);
}

} // namespace
