// Tests for the rate-aware frame-pipeline simulator.

#include <cmath>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "hw/frame_pipeline.hpp"

namespace {

using namespace orianna;
using hw::AcceleratorConfig;
using hw::PeriodicStream;

std::vector<PeriodicStream>
streamsOf(core::Application &app, double scale = 1.0)
{
    std::vector<PeriodicStream> streams;
    for (std::size_t i = 0; i < app.size(); ++i) {
        core::Algorithm &algo = app.algorithm(i);
        streams.push_back({&algo.program, &algo.values,
                           algo.rateHz * scale, 0.0});
    }
    return streams;
}

TEST(Pipeline, FrameCountsMatchRates)
{
    apps::BenchmarkApp bench = apps::buildManipulator(21);
    auto streams = streamsOf(bench.app);
    const auto result = hw::simulatePipeline(
        streams, AcceleratorConfig::minimal(true), 0.1);
    ASSERT_EQ(result.streams.size(), streams.size());
    for (std::size_t s = 0; s < streams.size(); ++s) {
        const auto expected = static_cast<std::size_t>(
            std::ceil(0.1 * streams[s].rateHz));
        EXPECT_EQ(result.streams[s].frames, expected)
            << "stream " << s;
    }
}

TEST(Pipeline, NominalRatesMeetDeadlines)
{
    // The Sec. 6.3 claim: one shared accelerator sustains all
    // algorithm rates of an application.
    for (apps::AppKind kind : apps::allApps()) {
        apps::BenchmarkApp bench = apps::buildApp(kind, 22);
        auto streams = streamsOf(bench.app);
        const auto result = hw::simulatePipeline(
            streams, AcceleratorConfig::minimal(true), 0.1);
        for (std::size_t s = 0; s < result.streams.size(); ++s)
            EXPECT_EQ(result.streams[s].deadlineMisses, 0u)
                << apps::appName(kind) << " stream " << s;
    }
}

TEST(Pipeline, LatencyIsAtLeastIsolatedMakespan)
{
    apps::BenchmarkApp bench = apps::buildMobileRobot(23);
    core::Algorithm &loc = bench.app.algorithm(0);
    const AcceleratorConfig config = AcceleratorConfig::minimal(true);

    const auto isolated =
        hw::simulate({{&loc.program, &loc.values}}, config);
    const auto pipeline = hw::simulatePipeline(
        {{&loc.program, &loc.values, 20.0, 0.0}}, config, 0.2);
    EXPECT_GE(pipeline.streams[0].meanLatencyS,
              isolated.seconds() * 0.999);
}

TEST(Pipeline, StressIncreasesLatency)
{
    apps::BenchmarkApp bench = apps::buildQuadrotor(24);
    auto nominal_streams = streamsOf(bench.app, 1.0);
    auto stressed_streams = streamsOf(bench.app, 100.0);
    const AcceleratorConfig config = AcceleratorConfig::minimal(true);

    const auto nominal =
        hw::simulatePipeline(nominal_streams, config, 0.05);
    const auto stressed =
        hw::simulatePipeline(stressed_streams, config, 0.02);
    // At 100x rates the accelerator does ~100x the work per second:
    // the hot unit's utilization rises by well over an order of
    // magnitude, and frames still make progress (the OoO scoreboard
    // absorbs the load below saturation).
    EXPECT_GT(stressed.utilization, 10.0 * nominal.utilization);
    std::size_t nominal_frames = 0;
    std::size_t stressed_frames = 0;
    for (std::size_t s = 0; s < nominal.streams.size(); ++s) {
        nominal_frames += nominal.streams[s].frames;
        stressed_frames += stressed.streams[s].frames;
    }
    EXPECT_GT(stressed_frames, 20 * nominal_frames);
}

TEST(Pipeline, OutOfOrderBeatsInOrderUnderContention)
{
    apps::BenchmarkApp bench = apps::buildQuadrotor(25);
    auto streams = streamsOf(bench.app, 60.0);
    const auto io = hw::simulatePipeline(
        streams, AcceleratorConfig::minimal(false), 0.02);
    const auto ooo = hw::simulatePipeline(
        streams, AcceleratorConfig::minimal(true), 0.02);
    double io_mean = 0.0;
    double ooo_mean = 0.0;
    for (std::size_t s = 0; s < streams.size(); ++s) {
        io_mean += io.streams[s].meanLatencyS;
        ooo_mean += ooo.streams[s].meanLatencyS;
    }
    EXPECT_LT(ooo_mean, io_mean);
}

TEST(Pipeline, InvalidInputsRejected)
{
    apps::BenchmarkApp bench = apps::buildManipulator(26);
    core::Algorithm &loc = bench.app.algorithm(0);
    const AcceleratorConfig config = AcceleratorConfig::minimal(true);
    EXPECT_THROW(hw::simulatePipeline({}, config, 0.1),
                 std::invalid_argument);
    EXPECT_THROW(hw::simulatePipeline(
                     {{&loc.program, &loc.values, 0.0, 0.0}}, config,
                     0.1),
                 std::invalid_argument);
    EXPECT_THROW(hw::simulatePipeline(
                     {{&loc.program, &loc.values, 10.0, 0.0}}, config,
                     -1.0),
                 std::invalid_argument);
    AcceleratorConfig broken = config;
    broken.count(hw::UnitKind::Qr) = 0;
    EXPECT_THROW(hw::simulatePipeline(
                     {{&loc.program, &loc.values, 10.0, 0.0}}, broken,
                     0.1),
                 std::invalid_argument);
}

} // namespace
