// The sharded serving stack (DESIGN.md §5): EngineGroup replica
// caches with fingerprint-affinity routing, AdmissionController
// bounded lanes, and the ServerPool's pinned/EDF disciplines.
//
// The invariants under test are the serving-layer contract:
//   - routing is a pure function of the fingerprint (deterministic);
//   - replica-served sessions are bit-identical to shared-Engine
//     sessions on all four benchmark applications;
//   - racing replicas dedup through the group's single-flight table
//     (one compile, N-1 shared hits, then lock-free local hits);
//   - admission rejection under saturation is typed and leaves the
//     rejected client's state untouched;
//   - EDF ordering drains pinned lanes by deadline but never changes
//     what sessions compute (digest-stable vs FIFO);
//   - a worker waiting in parallelFor drains its own batch before
//     unrelated work, so nested-batch latency is bounded.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine.hpp"
#include "runtime/engine_group.hpp"
#include "runtime/metrics.hpp"
#include "runtime/server_pool.hpp"

namespace {

using namespace orianna;
using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Bitwise equality of two Values: every double, exact bit pattern. */
bool
bitIdentical(const fg::Values &a, const fg::Values &b)
{
    const auto sameBits = [](double x, double y) {
        return std::memcmp(&x, &y, sizeof(double)) == 0;
    };
    if (a.keys() != b.keys())
        return false;
    for (fg::Key key : a.keys()) {
        if (a.isPose(key) != b.isPose(key))
            return false;
        if (a.isPose(key)) {
            const lie::Pose &pa = a.pose(key);
            const lie::Pose &pb = b.pose(key);
            for (std::size_t i = 0; i < pa.phi().size(); ++i)
                if (!sameBits(pa.phi()[i], pb.phi()[i]))
                    return false;
            for (std::size_t i = 0; i < pa.t().size(); ++i)
                if (!sameBits(pa.t()[i], pb.t()[i]))
                    return false;
        } else {
            const mat::Vector &va = a.vector(key);
            const mat::Vector &vb = b.vector(key);
            if (va.size() != vb.size())
                return false;
            for (std::size_t i = 0; i < va.size(); ++i)
                if (!sameBits(va[i], vb[i]))
                    return false;
        }
    }
    return true;
}

TEST(EngineGroupTest, AffinityRoutingIsDeterministic)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, 7);
    const core::Algorithm &loc = bench.app.algorithm(0);
    const std::uint64_t fingerprint =
        runtime::graphFingerprint(loc.graph, loc.values);

    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               /*replicas=*/5);
    EXPECT_EQ(group.replicaOf(fingerprint), fingerprint % 5u);
    EXPECT_EQ(group.route(loc.graph, loc.values),
              group.replicaOf(fingerprint));
    // Routing must survive the graph being rebuilt: an identical
    // mission (same seed, same measurements) lands on the same
    // replica forever.
    apps::BenchmarkApp again =
        apps::buildApp(apps::AppKind::MobileRobot, 7);
    const core::Algorithm &loc2 = again.app.algorithm(0);
    EXPECT_EQ(runtime::graphFingerprint(loc2.graph, loc2.values),
              fingerprint);
    EXPECT_EQ(group.route(loc2.graph, loc2.values),
              group.replicaOf(fingerprint));
    // A different mission may route elsewhere, but equally stably.
    apps::BenchmarkApp other =
        apps::buildApp(apps::AppKind::MobileRobot, 8);
    const core::Algorithm &loc3 = other.app.algorithm(0);
    EXPECT_EQ(group.route(loc3.graph, loc3.values),
              group.route(loc3.graph, loc3.values));
}

TEST(EngineGroupTest, ReplicaSessionsMatchSharedEngineOnAllApps)
{
    constexpr std::size_t kSteps = 3;
    for (const apps::AppKind kind :
         {apps::AppKind::MobileRobot, apps::AppKind::Manipulator,
          apps::AppKind::AutoVehicle, apps::AppKind::Quadrotor}) {
        apps::BenchmarkApp bench = apps::buildApp(kind, 3);
        for (std::size_t a = 0; a < bench.app.size(); ++a) {
            const core::Algorithm &alg = bench.app.algorithm(a);

            runtime::Engine engine(
                hw::AcceleratorConfig::minimal(true));
            runtime::Session shared =
                engine.session(alg.graph, alg.values);
            shared.iterate(kSteps);

            runtime::EngineGroup group(
                hw::AcceleratorConfig::minimal(true), /*replicas=*/3);
            const unsigned replica =
                group.route(alg.graph, alg.values);
            runtime::Session replicated =
                group.session(replica, alg.graph, alg.values);
            replicated.iterate(kSteps);

            EXPECT_TRUE(
                bitIdentical(shared.values(), replicated.values()))
                << "app " << static_cast<int>(kind) << " algorithm "
                << a;
        }
    }
}

TEST(EngineGroupTest, SingleFlightDedupAcrossReplicas)
{
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, 11);
    const core::Algorithm &loc = bench.app.algorithm(0);

    constexpr unsigned kReplicas = 4;
    runtime::ServerPool pool(kReplicas);
    // Pinned fp64: exact compile counts — an fp32 group would also
    // compile each session's reference fallback.
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    runtime::EngineGroup group(hw::AcceleratorConfig::minimal(true),
                               fp64, kReplicas);
    runtime::AdmissionController admission(pool, {});

    // Every replica opens the same graph at once: the group's shared
    // single-flight table must compile exactly once, the losers take
    // shared hits, and nothing is cached locally yet anywhere else.
    for (unsigned r = 0; r < kReplicas; ++r)
        admission.submit(r, [&group, &loc, r] {
            runtime::Session session =
                group.session(r, loc.graph, loc.values);
            session.step();
        });
    admission.drain();

    runtime::EngineGroup::Stats stats = group.stats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.sharedHits, kReplicas - 1);
    EXPECT_EQ(stats.localHits, 0u);

    // Steady state: reopening on each replica is a lock-free local
    // hit — the shared engine is never consulted again.
    for (unsigned r = 0; r < kReplicas; ++r)
        admission.submit(r, [&group, &loc, r] {
            runtime::Session session =
                group.session(r, loc.graph, loc.values);
            session.step();
        });
    admission.drain();

    stats = group.stats();
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_EQ(stats.sharedHits, kReplicas - 1);
    EXPECT_EQ(stats.localHits, kReplicas);
    for (unsigned r = 0; r < kReplicas; ++r)
        EXPECT_EQ(group.cachedPrograms(r), 1u) << "replica " << r;
}

TEST(AdmissionTest, RejectsWhenSaturatedAndLeavesValuesUntouched)
{
    runtime::ServerPool pool(1);
    runtime::AdmissionController admission(
        pool, {/*queueCapacity=*/2});

    // The session the shed client *would* have stepped: after the
    // rejection it must be exactly as constructed.
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    apps::BenchmarkApp bench =
        apps::buildApp(apps::AppKind::MobileRobot, 2);
    const core::Algorithm &loc = bench.app.algorithm(0);
    runtime::Session victim = engine.session(loc.graph, loc.values);
    const fg::Values before = victim.values();

    // Saturate: a blocker occupies the only worker, then two admitted
    // tasks fill the lane to its bound.
    std::promise<void> started;
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    admission.submit(0, [&started, gate] {
        started.set_value();
        gate.wait();
    });
    started.get_future().wait();

    std::atomic<int> ran{0};
    for (int i = 0; i < 2; ++i) {
        const auto outcome =
            admission.submit(0, [&ran] { ++ran; });
        ASSERT_TRUE(outcome.admitted());
        EXPECT_EQ(outcome.depth, static_cast<std::size_t>(i + 1));
    }
    EXPECT_EQ(admission.depth(0), 2u);

    // The lane is full: the next client is shed with a typed outcome
    // and its task never runs.
    bool stepped = false;
    const auto rejected =
        admission.submit(0, [&victim, &stepped] {
            stepped = true;
            victim.step();
        });
    EXPECT_FALSE(rejected.admitted());
    EXPECT_EQ(rejected.status,
              runtime::AdmissionController::Status::Rejected);
    EXPECT_EQ(rejected.worker, 0u);
    EXPECT_EQ(rejected.depth, 2u);
    EXPECT_EQ(rejected.capacity, 2u);

    release.set_value();
    admission.drain();

    EXPECT_FALSE(stepped);
    EXPECT_EQ(victim.frames(), 0u);
    EXPECT_TRUE(bitIdentical(victim.values(), before));
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(admission.admitted(), 3u); // Blocker + the two tasks.
    EXPECT_EQ(admission.rejected(), 1u);
    EXPECT_EQ(admission.depth(0), 0u);
}

TEST(AdmissionTest, DrainRethrowsTheFirstTaskError)
{
    runtime::ServerPool pool(1);
    runtime::AdmissionController admission(pool, {});
    admission.submit(0, [] {
        throw std::runtime_error("client exploded");
    });
    EXPECT_THROW(admission.drain(), std::runtime_error);
    // The error is delivered once; the controller keeps serving.
    std::atomic<bool> ran{false};
    admission.submit(0, [&ran] { ran = true; });
    admission.drain();
    EXPECT_TRUE(ran.load());
}

TEST(ServerPoolEdfTest, PinnedLaneDrainsByDeadline)
{
    const auto runOrder = [](bool edf) {
        runtime::PoolOptions options;
        options.threads = 1;
        options.edf = edf;
        runtime::ServerPool pool(options);

        // Hold the worker so the lane fills before anything drains;
        // the blocker's deadline 0 keeps it first under EDF too.
        std::promise<void> started;
        std::promise<void> release;
        std::shared_future<void> gate = release.get_future().share();
        pool.submitPinned(
            0,
            [&started, gate] {
                started.set_value();
                gate.wait();
            },
            /*deadlineUs=*/0);
        started.get_future().wait();

        std::vector<int> order;
        std::mutex order_mutex;
        const std::uint64_t deadlines[] = {50, 10, 30, 10};
        std::promise<void> done;
        for (int id = 0; id < 4; ++id)
            pool.submitPinned(
                0,
                [id, &order, &order_mutex, &done] {
                    std::lock_guard lock(order_mutex);
                    order.push_back(id);
                    if (order.size() == 4)
                        done.set_value();
                },
                deadlines[id]);
        release.set_value();
        done.get_future().wait();
        return order;
    };

    // EDF: smallest deadline first, FIFO among equals (ids 1 and 3
    // share deadline 10; submission order breaks the tie).
    EXPECT_EQ(runOrder(true), (std::vector<int>{1, 3, 2, 0}));
    // FIFO default: strict submission order, deadlines ignored.
    EXPECT_EQ(runOrder(false), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ServerPoolEdfTest, EdfAndFifoServeIdenticalValues)
{
    // Scheduling policy may reorder *when* sessions run, never what
    // they compute: both disciplines must reproduce the sequential
    // digests bit for bit.
    std::vector<apps::BenchmarkApp> missions;
    for (unsigned seed = 1; seed <= 3; ++seed)
        missions.push_back(
            apps::buildApp(apps::AppKind::MobileRobot, seed));

    const auto serveAll = [&missions](bool edf) {
        runtime::PoolOptions options;
        options.threads = 2;
        options.edf = edf;
        runtime::ServerPool pool(options);
        runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
        std::vector<fg::Values> finals(missions.size());
        pool.parallelFor(
            missions.size(),
            [&](std::size_t i) {
                const core::Algorithm &alg =
                    missions[i].app.algorithm(0);
                runtime::Session session =
                    engine.session(alg.graph, alg.values);
                session.iterate(3);
                finals[i] = session.values();
            },
            /*deadlineUs=*/runtime::MetricsRegistry::nowUs() + 1000);
        return finals;
    };

    std::vector<fg::Values> sequential;
    {
        runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
        for (const apps::BenchmarkApp &mission : missions) {
            const core::Algorithm &alg = mission.app.algorithm(0);
            runtime::Session session =
                engine.session(alg.graph, alg.values);
            session.iterate(3);
            sequential.push_back(session.values());
        }
    }

    const std::vector<fg::Values> fifo = serveAll(false);
    const std::vector<fg::Values> edf = serveAll(true);
    ASSERT_EQ(fifo.size(), sequential.size());
    ASSERT_EQ(edf.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_TRUE(bitIdentical(fifo[i], sequential[i])) << i;
        EXPECT_TRUE(bitIdentical(edf[i], sequential[i])) << i;
    }
}

TEST(ServerPoolHelpTest, WaiterPrefersItsOwnBatchOverUnrelatedWork)
{
    // Regression for the help-while-wait p99 pathology: a worker
    // waiting on its nested batch used to pick up *any* pending task
    // — including another client's long frame — so the nested batch's
    // completion was gated on unrelated work. With batch-preference
    // helping, the wait is bounded by the nested batch itself.
    //
    // Layout on 2 workers (round-robin + LIFO local pop): the outer
    // batch is tasks {0,1,2,3}; worker 0 gets {0,2} and pops 2 first
    // (the spawner), worker 1 gets {1,3} and pops 3 first (a long
    // task). The spawner's nested batch must not wait on the long
    // outer tasks 0/1/3.
    constexpr auto kLongTask = std::chrono::milliseconds(150);
    runtime::ServerPool pool(2);
    std::atomic<double> nested_wait_ms{-1.0};
    pool.parallelFor(4, [&](std::size_t i) {
        if (i == 2) {
            // Give worker 1 time to start a long task, then measure
            // how long the nested batch takes to come back.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            std::atomic<int> nested_ran{0};
            const auto start = Clock::now();
            pool.parallelFor(4,
                             [&nested_ran](std::size_t) {
                                 ++nested_ran;
                             });
            nested_wait_ms.store(elapsedMs(start));
            EXPECT_EQ(nested_ran.load(), 4);
        } else {
            std::this_thread::sleep_for(kLongTask);
        }
    });
    ASSERT_GE(nested_wait_ms.load(), 0.0);
    // Bound well below one long task: the old behavior waited for at
    // least one (often two) 150 ms outer tasks here.
    EXPECT_LT(nested_wait_ms.load(), 75.0);
}

TEST(ServerPoolHelpTest, PinnedTasksNeverGateBatchCompletion)
{
    // A pinned (affinity) task is long-running client work; a worker
    // helping its nested batch to completion must skip it. The outer
    // task queues a 50 ms pinned task on its own lane, then waits on
    // a trivial nested batch: if helping picked the pinned task up,
    // the nested wait would include those 50 ms.
    runtime::ServerPool pool(1);
    std::atomic<bool> pinned_ran{false};
    std::atomic<double> nested_ms{-1.0};
    pool.parallelFor(1, [&](std::size_t) {
        pool.submitPinned(0, [&pinned_ran] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            pinned_ran = true;
        });
        const auto start = Clock::now();
        pool.parallelFor(2, [](std::size_t) {});
        nested_ms.store(elapsedMs(start));
    });
    ASSERT_GE(nested_ms.load(), 0.0);
    EXPECT_LT(nested_ms.load(), 25.0);
    // The pinned task still runs on its owner, promptly.
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (!pinned_ran.load() && Clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(pinned_ran.load());
}

TEST(EngineGroupTest, RejectsZeroReplicasAndZeroCapacity)
{
    EXPECT_THROW(runtime::EngineGroup(
                     hw::AcceleratorConfig::minimal(true), 0),
                 std::invalid_argument);
    runtime::ServerPool pool(1);
    EXPECT_THROW(runtime::AdmissionController(
                     pool, {/*queueCapacity=*/0}),
                 std::invalid_argument);
}

} // namespace
