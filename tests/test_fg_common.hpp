#pragma once

// Shared helpers for the factor-graph test suites.

#include <random>

#include "fg/factor.hpp"
#include "fg/values.hpp"
#include "lie/pose.hpp"
#include "matrix/dense.hpp"

namespace orianna::test {

using fg::Key;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::Vector;

inline Vector
randomVector(std::size_t n, std::mt19937 &rng, double scale = 1.0)
{
    std::uniform_real_distribution<double> dist(-scale, scale);
    Vector out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(rng);
    return out;
}

inline Pose
randomPose(std::size_t n, std::mt19937 &rng, double rot_scale = 1.2,
           double trans_scale = 3.0)
{
    return Pose(randomVector(orianna::lie::tangentDim(n), rng, rot_scale),
                randomVector(n, rng, trans_scale));
}

/**
 * Central finite-difference Jacobian of a factor's whitened error with
 * respect to the tangent of @p key, for validating backward
 * propagation.
 */
inline Matrix
numericalJacobian(const fg::Factor &factor, const Values &values, Key key,
                  double h = 1e-6)
{
    const std::size_t dof = values.dof(key);
    const std::size_t dim = factor.dim();
    Matrix j(dim, dof);
    for (std::size_t c = 0; c < dof; ++c) {
        Vector delta(dof);
        delta[c] = h;
        Values plus = values;
        plus.retract(key, delta);
        delta[c] = -h;
        Values minus = values;
        minus.retract(key, delta);
        const Vector ep = factor.whitenedError(plus);
        const Vector em = factor.whitenedError(minus);
        for (std::size_t r = 0; r < dim; ++r)
            j(r, c) = (ep[r] - em[r]) / (2.0 * h);
    }
    return j;
}

/** Assert analytic (DFG backward) and numeric Jacobians agree. */
inline void
expectJacobiansMatch(const fg::Factor &factor, const Values &values,
                     double tol = 1e-6)
{
    const auto analytic = factor.whitenedJacobians(values);
    for (Key key : factor.keys()) {
        ASSERT_TRUE(analytic.count(key))
            << factor.name() << ": missing Jacobian for key " << key;
        const Matrix numeric = numericalJacobian(factor, values, key);
        EXPECT_LT(orianna::mat::maxDifference(analytic.at(key), numeric),
                  tol)
            << factor.name() << ": Jacobian mismatch for key " << key
            << "\nanalytic:\n"
            << analytic.at(key).str() << "\nnumeric:\n"
            << numeric.str();
    }
}

} // namespace orianna::test
