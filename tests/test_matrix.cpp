// Unit and property tests for the dense-matrix substrate.

#include <cmath>
#include <random>
#include <tuple>

#include <gtest/gtest.h>

#include "matrix/block_sparse.hpp"
#include "matrix/dense.hpp"
#include "matrix/mac_counter.hpp"
#include "matrix/qr.hpp"
#include "matrix/simd.hpp"

namespace {

namespace kernels = orianna::mat::kernels;

using orianna::mat::BlockSparseMatrix;
using orianna::mat::MacCounter;
using orianna::mat::MacScope;
using orianna::mat::Matrix;
using orianna::mat::maxDifference;
using orianna::mat::QrResult;
using orianna::mat::Vector;

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    Matrix out(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            out(i, j) = dist(rng);
    return out;
}

Vector
randomVector(std::size_t n, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    Vector out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = dist(rng);
    return out;
}

TEST(Vector, ArithmeticBasics)
{
    Vector a{1.0, 2.0, 3.0};
    Vector b{4.0, -1.0, 0.5};
    EXPECT_EQ((a + b)[0], 5.0);
    EXPECT_EQ((a - b)[1], 3.0);
    EXPECT_EQ((-a)[2], -3.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 2.0 + 1.5);
    EXPECT_DOUBLE_EQ(Vector({3.0, 4.0}).norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 3.0);
}

TEST(Vector, SegmentAndConcat)
{
    Vector a{1.0, 2.0, 3.0, 4.0};
    Vector mid = a.segment(1, 2);
    ASSERT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid[0], 2.0);
    EXPECT_EQ(mid[1], 3.0);

    Vector joined = mid.concat(Vector{9.0});
    ASSERT_EQ(joined.size(), 3u);
    EXPECT_EQ(joined[2], 9.0);

    a.setSegment(2, Vector{7.0, 8.0});
    EXPECT_EQ(a[2], 7.0);
    EXPECT_EQ(a[3], 8.0);
}

TEST(Vector, SizeMismatchThrows)
{
    Vector a{1.0, 2.0};
    Vector b{1.0};
    EXPECT_THROW(a + b, std::invalid_argument);
    EXPECT_THROW(a.dot(b), std::invalid_argument);
    EXPECT_THROW(a.segment(1, 2), std::out_of_range);
}

TEST(Matrix, InitializerAndAccess)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m(1, 0), 3.0);
    EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal)
{
    Matrix i3 = Matrix::identity(3);
    EXPECT_EQ(i3(0, 0), 1.0);
    EXPECT_EQ(i3(0, 1), 0.0);

    Matrix d = Matrix::diagonal(Vector{2.0, 5.0});
    EXPECT_EQ(d(1, 1), 5.0);
    EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnownValues)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix c = a * b;
    EXPECT_EQ(c(0, 0), 19.0);
    EXPECT_EQ(c(0, 1), 22.0);
    EXPECT_EQ(c(1, 0), 43.0);
    EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeInvolution)
{
    std::mt19937 rng(7);
    Matrix a = randomMatrix(4, 6, rng);
    EXPECT_EQ(maxDifference(a.transpose().transpose(), a), 0.0);
}

TEST(Matrix, BlockRoundTrip)
{
    std::mt19937 rng(11);
    Matrix a = randomMatrix(5, 5, rng);
    Matrix sub = a.block(1, 2, 3, 2);
    Matrix b(5, 5);
    b.setBlock(1, 2, sub);
    EXPECT_EQ(maxDifference(b.block(1, 2, 3, 2), sub), 0.0);
    EXPECT_THROW(a.block(3, 3, 3, 3), std::out_of_range);
}

TEST(Matrix, StackOperations)
{
    Matrix a{{1.0, 2.0}};
    Matrix b{{3.0, 4.0}};
    Matrix v = a.vstack(b);
    EXPECT_EQ(v.rows(), 2u);
    EXPECT_EQ(v(1, 1), 4.0);

    Matrix h = a.hstack(b);
    EXPECT_EQ(h.cols(), 4u);
    EXPECT_EQ(h(0, 3), 4.0);
}

TEST(Matrix, DensityAndNonZeros)
{
    Matrix m(2, 2);
    m(0, 0) = 1.0;
    EXPECT_EQ(m.nonZeros(), 1u);
    EXPECT_DOUBLE_EQ(m.density(), 0.25);
    EXPECT_TRUE(m.isUpperTriangular());
    m(1, 0) = 0.5;
    EXPECT_FALSE(m.isUpperTriangular());
}

TEST(MacCounter, CountsMultiplies)
{
    MacCounter::reset();
    Matrix a = Matrix::identity(3);
    Matrix b = Matrix::identity(3);
    {
        MacScope scope;
        (void)(a * b);
        EXPECT_EQ(scope.elapsed(), 27u);
    }
}

// --- Microkernels vs the naive reference --------------------------------
//
// The blocked kernels behind operator*, transpose and the fused
// transposeTimes / timesTranspose variants promise *bit-identical*
// results to the naive reference loops (one ascending-k accumulation
// chain per output element), so these compare with EXPECT_EQ on the
// raw doubles — no tolerance. The promise holds for the scalar kernel
// tier only — SIMD tiers reassociate and are covered by the
// tolerance-based parity suite in test_simd.cpp — so these tests pin
// the scalar table for their lifetime.

namespace {

Matrix
naiveMultiply(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += a(i, k) * b(k, j);
            out(i, j) = acc;
        }
    return out;
}

Matrix
naiveTranspose(const Matrix &a)
{
    Matrix out(a.cols(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            out(j, i) = a(i, j);
    return out;
}

Vector
naiveMultiply(const Matrix &a, const Vector &x)
{
    Vector out(a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < a.cols(); ++k)
            acc += a(i, k) * x[k];
        out[i] = acc;
    }
    return out;
}

void
expectBitIdentical(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.rows(); ++i)
        for (std::size_t j = 0; j < got.cols(); ++j)
            EXPECT_EQ(got(i, j), want(i, j))
                << "element (" << i << ", " << j << ")";
}

} // namespace

class KernelShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(KernelShapes, MultiplyAndTransposeMatchNaiveBitForBit)
{
    const kernels::ScopedKernelTier pin(kernels::SimdTier::Scalar);
    const auto [m, k, n] = GetParam();
    std::mt19937 rng(300 + m * 31 + k * 7 + n);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix b = randomMatrix(k, n, rng);

    expectBitIdentical(a * b, naiveMultiply(a, b));
    expectBitIdentical(a.transpose(), naiveTranspose(a));

    const Vector x = randomVector(k, rng);
    const Vector got = a * x;
    const Vector want = naiveMultiply(a, x);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

TEST_P(KernelShapes, FusedTransposeVariantsMatchNaiveBitForBit)
{
    const kernels::ScopedKernelTier pin(kernels::SimdTier::Scalar);
    const auto [m, k, n] = GetParam();
    std::mt19937 rng(400 + m * 31 + k * 7 + n);
    // For A^T B both operands have m rows; for A B^T both have k cols.
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix left = randomMatrix(m, n, rng);
    const Matrix right = randomMatrix(n, k, rng);

    expectBitIdentical(a.transposeTimes(left),
                       naiveMultiply(naiveTranspose(a), left));
    expectBitIdentical(a.timesTranspose(right),
                       naiveMultiply(a, naiveTranspose(right)));

    const Vector x = randomVector(m, rng);
    const Vector got = a.transposeTimes(x);
    const Vector want = naiveMultiply(naiveTranspose(a), x);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

TEST_P(KernelShapes, FusedVariantsCountTheSameMacs)
{
    const auto [m, k, n] = GetParam();
    std::mt19937 rng(500 + m * 31 + k * 7 + n);
    const Matrix a = randomMatrix(m, k, rng);
    const Matrix left = randomMatrix(m, n, rng);
    const Matrix right = randomMatrix(n, k, rng);
    const Vector x = randomVector(m, rng);

    // Fusing away the materialized transpose must not change the MAC
    // accounting the Sec. 4.3 experiment depends on.
    const auto macsOf = [](const auto &thunk) {
        MacScope scope;
        thunk();
        return scope.elapsed();
    };
    EXPECT_EQ(macsOf([&] { (void)a.transposeTimes(left); }),
              macsOf([&] { (void)(a.transpose() * left); }));
    EXPECT_EQ(macsOf([&] { (void)a.timesTranspose(right); }),
              macsOf([&] { (void)(a * right.transpose()); }));
    EXPECT_EQ(macsOf([&] { (void)a.transposeTimes(x); }),
              macsOf([&] { (void)(a.transpose() * x); }));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 3, 2},
                      std::tuple{2, 1, 3}, std::tuple{3, 5, 1},
                      std::tuple{4, 8, 8}, std::tuple{5, 7, 3},
                      std::tuple{9, 13, 5}, std::tuple{16, 16, 16},
                      std::tuple{17, 19, 23}, std::tuple{33, 40, 37}));

// --- QR property tests over random shapes -------------------------------

class QrShapes : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(QrShapes, HouseholderTriangularizesAndPreservesNormalEquations)
{
    const auto [m, n] = GetParam();
    std::mt19937 rng(100 + m * 17 + n);
    Matrix a = randomMatrix(m, n, rng);
    Vector b = randomVector(m, rng);

    QrResult qr = orianna::mat::householderQr(a, b);
    EXPECT_TRUE(qr.r.isUpperTriangular(1e-9));
    // Orthogonal transforms preserve A^T A and A^T b.
    EXPECT_LT(maxDifference(qr.r.transpose() * qr.r, a.transpose() * a),
              1e-9);
    EXPECT_LT(maxDifference(qr.r.transpose() * qr.rhs,
                            a.transpose() * b),
              1e-9);
}

TEST_P(QrShapes, GivensMatchesHouseholderUpToRowSign)
{
    const auto [m, n] = GetParam();
    std::mt19937 rng(200 + m * 17 + n);
    Matrix a = randomMatrix(m, n, rng);
    Vector b = randomVector(m, rng);

    QrResult hh = orianna::mat::householderQr(a, b);
    QrResult gv = orianna::mat::givensQr(a, b);
    EXPECT_TRUE(gv.r.isUpperTriangular(1e-9));
    // R^T R is sign-invariant, so compare through the Gram matrix.
    EXPECT_LT(maxDifference(gv.r.transpose() * gv.r,
                            hh.r.transpose() * hh.r),
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapes,
    ::testing::Values(std::pair{1, 1}, std::pair{3, 2}, std::pair{4, 4},
                      std::pair{6, 3}, std::pair{8, 5}, std::pair{12, 7},
                      std::pair{20, 12}, std::pair{5, 5}));

TEST(Qr, LeastSquaresRecoversExactSolution)
{
    std::mt19937 rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        Matrix a = randomMatrix(8, 4, rng);
        Vector x_true = randomVector(4, rng);
        Vector b = a * x_true;
        Vector x = orianna::mat::leastSquares(a, b);
        EXPECT_LT(maxDifference(x, x_true), 1e-8);
    }
}

TEST(Qr, BackSubstituteSolvesTriangularSystem)
{
    Matrix r{{2.0, 1.0, -1.0}, {0.0, 3.0, 0.5}, {0.0, 0.0, 4.0}};
    Vector x_true{1.0, -2.0, 0.5};
    Vector y = r * x_true;
    Vector x = orianna::mat::backSubstitute(r, y);
    EXPECT_LT(maxDifference(x, x_true), 1e-12);
}

TEST(Qr, BackSubstituteRejectsSingular)
{
    Matrix r{{1.0, 1.0}, {0.0, 0.0}};
    EXPECT_THROW(orianna::mat::backSubstitute(r, Vector{1.0, 1.0}),
                 std::runtime_error);
}

TEST(Qr, MismatchedShapesThrow)
{
    Matrix a(3, 2);
    Vector b(2);
    EXPECT_THROW(orianna::mat::householderQr(a, b), std::invalid_argument);
    EXPECT_THROW(orianna::mat::givensQr(a, b), std::invalid_argument);
}

// --- Block-sparse assembly ----------------------------------------------

TEST(BlockSparse, OffsetsAndShape)
{
    BlockSparseMatrix m({2, 3}, {3, 1, 2});
    EXPECT_EQ(m.totalRows(), 5u);
    EXPECT_EQ(m.totalCols(), 6u);
    EXPECT_EQ(m.rowOffset(1), 2u);
    EXPECT_EQ(m.colOffset(2), 4u);
}

TEST(BlockSparse, SetAndFindBlock)
{
    BlockSparseMatrix m({2, 2}, {2, 2});
    EXPECT_EQ(m.findBlock(0, 1), nullptr);
    m.setBlock(0, 1, Matrix{{1.0, 2.0}, {3.0, 4.0}});
    ASSERT_NE(m.findBlock(0, 1), nullptr);
    EXPECT_EQ((*m.findBlock(0, 1))(1, 1), 4.0);
    EXPECT_THROW(m.setBlock(0, 0, Matrix(3, 3)), std::invalid_argument);
    EXPECT_THROW(m.setBlock(5, 0, Matrix(2, 2)), std::out_of_range);
}

TEST(BlockSparse, DenseRoundTripAndDensity)
{
    BlockSparseMatrix m({1, 1}, {1, 1});
    m.setBlock(0, 0, Matrix{{2.0}});
    m.setBlock(1, 1, Matrix{{3.0}});
    Matrix dense = m.toDense();
    EXPECT_EQ(dense(0, 0), 2.0);
    EXPECT_EQ(dense(1, 1), 3.0);
    EXPECT_EQ(dense(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.density(), 0.5);
    EXPECT_EQ(m.nonZeros(), 2u);
}

TEST(BlockSparse, RowAndColQueries)
{
    BlockSparseMatrix m({1, 1, 1}, {1, 1});
    m.setBlock(0, 0, Matrix{{1.0}});
    m.setBlock(0, 1, Matrix{{1.0}});
    m.setBlock(2, 1, Matrix{{1.0}});
    EXPECT_EQ(m.blocksInRow(0).size(), 2u);
    EXPECT_EQ(m.blocksInRow(1).size(), 0u);
    auto col1 = m.blocksInCol(1);
    ASSERT_EQ(col1.size(), 2u);
    EXPECT_EQ(col1[0], 0u);
    EXPECT_EQ(col1[1], 2u);
}

} // namespace
