// Tests for the ORIANNA compiler: instruction generation from MO-DFGs
// and factor-graph inference, and functional equivalence between the
// compiled program (accelerator path) and the software solver.

#include <set>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "fg/eliminate.hpp"
#include "fg/factors.hpp"
#include "fg/optimizer.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using comp::IsaOp;
using comp::Program;
using fg::FactorGraph;
using fg::Key;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::maxDifference;
using mat::Vector;

/** Count instructions with a given opcode. */
std::size_t
countOp(const Program &program, IsaOp op)
{
    std::size_t count = 0;
    for (const auto &inst : program.instructions)
        count += (inst.op == op) ? 1 : 0;
    return count;
}

/** Compiled deltas must equal the software elimination solution. */
void
expectProgramMatchesSolver(const FactorGraph &graph, const Values &values,
                           double tol = 1e-8)
{
    const Program program = comp::compileGraph(graph, values);
    comp::Executor executor(program);
    const auto hw_delta = executor.run(values);

    fg::LinearSystem system = graph.linearize(values);
    const auto sw_delta = fg::solveLinearSystem(system, graph.allKeys());

    ASSERT_EQ(hw_delta.size(), sw_delta.size());
    for (const auto &[key, sw] : sw_delta) {
        ASSERT_TRUE(hw_delta.count(key)) << "missing delta for " << key;
        EXPECT_LT(maxDifference(hw_delta.at(key), sw), tol)
            << "delta mismatch for key " << key;
    }
}

/** Pose-graph chain with a loop closure, 2-D or 3-D. */
FactorGraph
chainGraph(std::size_t n, std::size_t dim, Values &values,
           std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();
    Pose current = Pose::identity(dim);
    std::vector<Pose> truth;
    for (std::size_t i = 0; i < n; ++i) {
        truth.push_back(current);
        values.insert(i, current.retract(randomVector(current.dof(), rng,
                                                      0.05)));
        Pose step = randomPose(dim, rng, 0.2, 1.0);
        if (i + 1 < n)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, step,
                fg::isotropicSigmas(current.dof(), 0.1));
        current = current.oplus(step);
    }
    graph.emplace<fg::PriorFactor>(
        0u, truth[0], fg::isotropicSigmas(truth[0].dof(), 0.01));
    if (n > 2)
        graph.emplace<fg::BetweenFactor>(
            0u, n - 1, truth[n - 1].ominus(truth[0]),
            fg::isotropicSigmas(truth[0].dof(), 0.1));
    return graph;
}

TEST(Codegen, InstructionStreamStructure)
{
    std::mt19937 rng(21);
    Values values;
    FactorGraph graph = chainGraph(4, 3, values, rng);
    const Program program = comp::compileGraph(graph, values);

    // One QR and one BSUB per eliminated variable.
    EXPECT_EQ(countOp(program, IsaOp::QR), 4u);
    EXPECT_EQ(countOp(program, IsaOp::BSUB), 4u);
    // Every pose streams phi and t exactly once (LOADV dedup).
    EXPECT_EQ(countOp(program, IsaOp::LOADV), 8u);
    // Forward Exp for every pose use: 4 between (2 each) + 1 prior + 1
    // loop closure (2) = 11 InputRot leaves... plus no derived Exps.
    EXPECT_GT(countOp(program, IsaOp::EXP), 8u);
    // Deltas bound for every variable.
    EXPECT_EQ(program.deltas.size(), 4u);

    // Dependences reference earlier instructions only.
    for (std::size_t i = 0; i < program.instructions.size(); ++i)
        for (std::uint32_t dep : program.instructions[i].deps)
            EXPECT_LT(dep, i);
}

TEST(Codegen, ListingIsPrintable)
{
    std::mt19937 rng(22);
    Values values;
    FactorGraph graph = chainGraph(3, 2, values, rng);
    const Program program = comp::compileGraph(graph, values);
    const std::string listing = program.str();
    EXPECT_NE(listing.find("QR"), std::string::npos);
    EXPECT_NE(listing.find("GATHER"), std::string::npos);
    EXPECT_NE(listing.find("BSUB"), std::string::npos);
    const auto histogram = program.opHistogram();
    std::size_t total = 0;
    for (std::size_t c : histogram)
        total += c;
    EXPECT_EQ(total, program.instructions.size());
}

class ProgramVsSolver : public ::testing::TestWithParam<int>
{};

TEST_P(ProgramVsSolver, Chain2d)
{
    std::mt19937 rng(100 + GetParam());
    Values values;
    FactorGraph graph = chainGraph(5, 2, values, rng);
    expectProgramMatchesSolver(graph, values);
}

TEST_P(ProgramVsSolver, Chain3d)
{
    std::mt19937 rng(200 + GetParam());
    Values values;
    FactorGraph graph = chainGraph(5, 3, values, rng);
    expectProgramMatchesSolver(graph, values);
}

TEST_P(ProgramVsSolver, LocalizationWithLandmarks)
{
    std::mt19937 rng(300 + GetParam());
    Values values;
    FactorGraph graph;
    fg::CameraModel cam{380, 380, 320, 240};
    std::vector<Pose> poses;
    for (int i = 0; i < 3; ++i)
        poses.emplace_back(Vector{0.05 * i, -0.02 * i, 0.1 * i},
                           Vector{0.8 * i, 0.1 * i, 0.0});
    std::vector<Vector> landmarks{Vector{0.5, 0.4, 3.0},
                                  Vector{1.5, -0.5, 4.0}};
    auto pixel = [&](const Pose &x, const Vector &l) {
        Vector local = x.rotation().transpose() * (l - x.t());
        return Vector{cam.fx * local[0] / local[2] + cam.cx,
                      cam.fy * local[1] / local[2] + cam.cy};
    };
    for (int p = 0; p < 3; ++p)
        for (int l = 0; l < 2; ++l)
            graph.emplace<fg::CameraFactor>(
                p, 10 + l, pixel(poses[p], landmarks[l]), cam,
                fg::isotropicSigmas(2, 1.0));
    for (int p = 0; p + 1 < 3; ++p)
        graph.emplace<fg::IMUFactor>(
            p, p + 1, poses[p + 1].ominus(poses[p]),
            fg::isotropicSigmas(6, 0.05));
    graph.emplace<fg::PriorFactor>(0, poses[0],
                                   fg::isotropicSigmas(6, 0.01));
    graph.emplace<fg::GPSFactor>(2, poses[2].t(),
                                 fg::isotropicSigmas(3, 0.5));

    values = Values();
    for (int p = 0; p < 3; ++p)
        values.insert(p, poses[p].retract(randomVector(6, rng, 0.03)));
    for (int l = 0; l < 2; ++l)
        values.insert(10 + l, landmarks[l] + randomVector(3, rng, 0.05));

    expectProgramMatchesSolver(graph, values, 1e-7);
}

TEST_P(ProgramVsSolver, PlanningWithObstacles)
{
    std::mt19937 rng(400 + GetParam());
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{1.5, 0.5}, 0.5);

    FactorGraph graph;
    Values values;
    const std::size_t steps = 6;
    for (std::size_t k = 0; k < steps; ++k) {
        values.insert(k, Vector{0.6 * k, 0.05 * k, 0.6, 0.05} +
                             randomVector(4, rng, 0.02));
        if (k + 1 < steps)
            graph.emplace<fg::SmoothFactor>(k, k + 1, 2, 0.5,
                                            fg::isotropicSigmas(4, 0.3));
        graph.emplace<fg::CollisionFreeFactor>(k, map, 4, 2, 0.8, 0.1);
        graph.emplace<fg::KinematicsFactor>(k, 4, 2, 2, 1.0, 0.5);
    }
    graph.emplace<fg::VectorPriorFactor>(0u, Vector{0, 0, 0.6, 0.05},
                                         fg::isotropicSigmas(4, 0.01));
    graph.emplace<fg::VectorPriorFactor>(
        steps - 1, Vector{3.0, 0.25, 0.6, 0.05},
        fg::isotropicSigmas(4, 0.01));

    expectProgramMatchesSolver(graph, values, 1e-7);
}

TEST_P(ProgramVsSolver, ControlHorizon)
{
    std::mt19937 rng(500 + GetParam());
    const std::size_t horizon = 5;
    Matrix a = Matrix::identity(3);
    a(0, 1) = 0.1;
    Matrix bmat(3, 2);
    bmat(1, 0) = 0.1;
    bmat(2, 1) = 0.1;

    FactorGraph graph;
    Values values;
    for (std::size_t k = 0; k <= horizon; ++k)
        values.insert(k, randomVector(3, rng, 0.5));
    for (std::size_t k = 0; k < horizon; ++k)
        values.insert(100 + k, randomVector(2, rng, 0.2));

    graph.emplace<fg::VectorPriorFactor>(0u, values.vector(0),
                                         fg::isotropicSigmas(3, 1e-2));
    for (std::size_t k = 0; k < horizon; ++k) {
        graph.emplace<fg::DynamicsFactor>(k, 100 + k, k + 1, a, bmat,
                                          fg::isotropicSigmas(3, 1e-2));
        graph.emplace<fg::VectorPriorFactor>(k + 1, Vector(3),
                                             fg::isotropicSigmas(3, 1.0));
        graph.emplace<fg::VectorPriorFactor>(100 + k, Vector(2),
                                             fg::isotropicSigmas(2, 2.0));
    }
    expectProgramMatchesSolver(graph, values, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramVsSolver, ::testing::Range(0, 4));

TEST(Program, IteratedStepsMatchGaussNewton)
{
    // Running the compiled program iteratively (the accelerator loop of
    // Fig. 12) must track the software Gauss-Newton optimizer.
    std::mt19937 rng(31);
    Values values;
    FactorGraph graph = chainGraph(5, 3, values, rng);
    const Program program = comp::compileGraph(graph, values);

    Values hw = values;
    for (int iter = 0; iter < 5; ++iter)
        hw = comp::applyProgramStep(program, hw);

    fg::GaussNewtonParams params;
    params.maxIterations = 5;
    params.deltaTol = 0.0;
    params.absoluteErrorTol = 0.0;
    params.relativeErrorTol = 0.0;
    auto sw = fg::optimize(graph, values, params);

    for (Key key : graph.allKeys())
        EXPECT_LT(lie::poseDistance(hw.pose(key), sw.values.pose(key)),
                  1e-7);
    EXPECT_LT(graph.totalError(hw), 1e-9);
}

TEST(Program, CustomOrderingRespected)
{
    std::mt19937 rng(32);
    Values values;
    FactorGraph graph = chainGraph(4, 2, values, rng);

    comp::CompileOptions options;
    options.ordering = {3, 1, 2, 0};
    const Program program = comp::compileGraph(graph, values, options);
    comp::Executor executor(program);
    const auto hw_delta = executor.run(values);

    fg::LinearSystem system = graph.linearize(values);
    const auto sw_delta =
        fg::solveLinearSystem(system, {3, 1, 2, 0});
    for (const auto &[key, sw] : sw_delta)
        EXPECT_LT(maxDifference(hw_delta.at(key), sw), 1e-8);
}

TEST(Program, AlgorithmTagPropagates)
{
    std::mt19937 rng(33);
    Values values;
    FactorGraph graph = chainGraph(3, 2, values, rng);
    comp::CompileOptions options;
    options.algorithmTag = 7;
    const Program program = comp::compileGraph(graph, values, options);
    for (const auto &inst : program.instructions)
        EXPECT_EQ(inst.algorithm, 7);
}

TEST(Program, MissingVariableThrows)
{
    FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1u, Pose::identity(2),
                                   fg::isotropicSigmas(3, 1.0));
    Values values;
    values.insert(1, Pose::identity(2));
    comp::CompileOptions options;
    options.ordering = {1, 2}; // Key 2 does not exist in the graph.
    EXPECT_THROW(comp::compileGraph(graph, values, options),
                 std::runtime_error);
}

TEST(Program, Fig11LevelParallelism)
{
    // The Equ. 3 between-factor DFG must expose instruction-level
    // parallelism: at least two instructions share all-satisfied deps
    // at some point (the L3 RR/RV pair of Fig. 11).
    Values values;
    values.insert(1, Pose::identity(3));
    values.insert(2, Pose(Vector{0.1, 0.0, 0.2}, Vector{1, 0, 0}));
    FactorGraph graph;
    graph.emplace<fg::BetweenFactor>(1, 2, Pose::identity(3),
                                     fg::isotropicSigmas(6, 1.0));
    graph.emplace<fg::PriorFactor>(1, Pose::identity(3),
                                   fg::isotropicSigmas(6, 1.0));
    const Program program = comp::compileGraph(graph, values);

    // Level-schedule the instructions by dependence depth.
    std::vector<std::size_t> level(program.instructions.size(), 0);
    std::map<std::size_t, std::size_t> width;
    for (std::size_t i = 0; i < program.instructions.size(); ++i) {
        for (std::uint32_t dep : program.instructions[i].deps)
            level[i] = std::max(level[i], level[dep] + 1);
        ++width[level[i]];
    }
    std::size_t max_width = 0;
    for (const auto &[lvl, w] : width)
        max_width = std::max(max_width, w);
    EXPECT_GE(max_width, 2u)
        << "no instruction-level parallelism found";
}

} // namespace
