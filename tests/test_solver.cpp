// Tests for the linearization, elimination (factor-graph inference),
// ordering heuristics and the Gauss-Newton optimizer.

#include <gtest/gtest.h>

#include "fg/factors.hpp"
#include "fg/optimizer.hpp"
#include "fg/ordering.hpp"
#include "matrix/qr.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::FactorGraph;
using fg::Key;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::maxDifference;
using mat::Vector;

/** A small localization graph mirroring Fig. 4 (poses + landmarks). */
FactorGraph
fig4Graph(Values &values, std::mt19937 &rng)
{
    // Ground truth: three poses moving forward, two landmarks.
    std::vector<Pose> poses;
    for (int i = 0; i < 3; ++i)
        poses.emplace_back(Vector{0.1 * i, 0.0, 0.05 * i},
                           Vector{1.0 * i, 0.5 * i, 0.0});
    Vector l1{1.0, 2.0, 1.0};
    Vector l2{2.5, 1.0, 0.8};

    FactorGraph graph;
    fg::CameraModel cam{400, 400, 320, 240};
    auto pixel = [&](const Pose &x, const Vector &l) {
        Vector local = x.rotation().transpose() * (l - x.t());
        return Vector{cam.fx * local[0] / local[2] + cam.cx,
                      cam.fy * local[1] / local[2] + cam.cy};
    };
    // Keys: poses 1..3, landmarks 11..12 (as in the Sec. 5.1 listing).
    graph.emplace<fg::CameraFactor>(1, 11, pixel(poses[0], l1), cam,
                                    fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(2, 11, pixel(poses[1], l1), cam,
                                    fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(3, 12, pixel(poses[2], l2), cam,
                                    fg::isotropicSigmas(2, 1.0));
    // Landmarks are 3-D, so each needs at least two 2-row camera
    // observations to be determined.
    graph.emplace<fg::CameraFactor>(3, 11, pixel(poses[2], l1), cam,
                                    fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::CameraFactor>(2, 12, pixel(poses[1], l2), cam,
                                    fg::isotropicSigmas(2, 1.0));
    graph.emplace<fg::IMUFactor>(1, 2, poses[1].ominus(poses[0]),
                                 fg::isotropicSigmas(6, 0.1));
    graph.emplace<fg::IMUFactor>(2, 3, poses[2].ominus(poses[1]),
                                 fg::isotropicSigmas(6, 0.1));
    graph.emplace<fg::PriorFactor>(1, poses[0],
                                   fg::isotropicSigmas(6, 0.01));

    // Slightly perturbed initial values.
    values = Values();
    for (int i = 0; i < 3; ++i) {
        Vector noise = randomVector(6, rng, 0.02);
        values.insert(i + 1, poses[i].retract(noise));
    }
    values.insert(11, l1 + randomVector(3, rng, 0.05));
    values.insert(12, l2 + randomVector(3, rng, 0.05));
    return graph;
}

TEST(Graph, AccountingAndAdjacency)
{
    std::mt19937 rng(3);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    EXPECT_EQ(graph.size(), 8u);
    const auto keys = graph.allKeys();
    ASSERT_EQ(keys.size(), 5u);
    EXPECT_EQ(keys.front(), 1u);
    EXPECT_EQ(keys.back(), 12u);

    const auto adj = graph.adjacency();
    // Pose 2 touches camera(2,11), camera(2,12), imu(1,2), imu(2,3).
    EXPECT_EQ(adj.at(2).size(), 4u);
    EXPECT_EQ(adj.at(12).size(), 2u);
    EXPECT_THROW(graph.totalError(Values{}), std::out_of_range);
}

TEST(Graph, LinearizeShapes)
{
    std::mt19937 rng(4);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    fg::LinearSystem system = graph.linearize(values);
    ASSERT_EQ(system.rows.size(), 8u);
    // 5 cameras (2 rows) + 2 IMU (6) + prior (6) = 28 rows.
    EXPECT_EQ(system.totalRows(), 28u);
    // 3 poses (6) + 2 landmarks (3) = 24 cols.
    EXPECT_EQ(system.totalCols(), 24u);

    const auto ordering = graph.allKeys();
    Matrix dense = system.toDense(ordering);
    EXPECT_EQ(dense.rows(), 28u);
    EXPECT_EQ(dense.cols(), 24u);
    // The system is sparse: camera rows touch only 9 of 24 columns.
    EXPECT_LT(dense.density(), 0.6);
}

TEST(Eliminate, MatchesDenseLeastSquares)
{
    std::mt19937 rng(5);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    fg::LinearSystem system = graph.linearize(values);
    const auto ordering = graph.allKeys();

    // Reference: dense QR on the stacked system.
    Matrix a = system.toDense(ordering);
    Vector b = system.stackedRhs();
    Vector x_dense = mat::leastSquares(a, b);

    // Factor-graph inference.
    auto delta = fg::solveLinearSystem(system, ordering);

    std::size_t offset = 0;
    for (Key key : ordering) {
        const Vector &dv = delta.at(key);
        for (std::size_t i = 0; i < dv.size(); ++i)
            EXPECT_NEAR(dv[i], x_dense[offset + i], 1e-8)
                << "key " << key << " component " << i;
        offset += dv.size();
    }
}

TEST(Eliminate, AnyOrderingGivesSameSolution)
{
    std::mt19937 rng(6);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    fg::LinearSystem system = graph.linearize(values);

    const auto natural = fg::ordering::natural(graph);
    const auto min_degree = fg::ordering::minDegree(graph);
    auto d1 = fg::solveLinearSystem(system, natural);
    auto d2 = fg::solveLinearSystem(system, min_degree);
    for (Key key : natural)
        EXPECT_LT(maxDifference(d1.at(key), d2.at(key)), 1e-8);
}

TEST(Eliminate, StatsRecordSmallDenseOps)
{
    // The Sec. 7.5 claim in miniature: elimination works on small,
    // dense matrices rather than one large sparse one.
    std::mt19937 rng(7);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    fg::LinearSystem system = graph.linearize(values);
    const auto ordering = fg::ordering::minDegree(graph);

    fg::EliminationStats stats;
    auto delta = fg::solveLinearSystem(system, ordering, &stats);
    ASSERT_EQ(stats.qrOps.size(), 5u);      // One per variable.
    ASSERT_EQ(stats.backSubOps.size(), 5u); // One per variable.

    const Matrix dense = system.toDense(graph.allKeys());
    for (const auto &op : stats.qrOps) {
        EXPECT_LT(op.cols, dense.cols());
        EXPECT_GT(op.density, dense.density());
    }
}

TEST(Eliminate, IncompleteOrderingThrows)
{
    std::mt19937 rng(8);
    Values values;
    FactorGraph graph = fig4Graph(values, rng);
    fg::LinearSystem system = graph.linearize(values);
    std::vector<Key> bad{1, 2, 3, 11}; // Missing 12.
    EXPECT_THROW(fg::solveLinearSystem(system, bad),
                 std::invalid_argument);
    std::vector<Key> dup{1, 2, 3, 11, 11};
    EXPECT_THROW(fg::solveLinearSystem(system, dup),
                 std::invalid_argument);
}

TEST(Eliminate, UnderdeterminedThrows)
{
    // A landmark observed by nothing cannot be eliminated.
    fg::LinearSystem system;
    system.dofs[1] = 2;
    EXPECT_THROW(fg::solveLinearSystem(system, {1}), std::runtime_error);
}

TEST(Ordering, MinDegreeReducesFillIn)
{
    // A chain with a hub variable: eliminating the hub first creates a
    // big clique; min-degree eliminates leaves first.
    FactorGraph graph;
    for (Key leaf = 1; leaf <= 6; ++leaf) {
        graph.emplace<fg::BetweenFactor>(
            0, leaf, Pose::identity(2), fg::isotropicSigmas(3, 1.0));
    }
    graph.emplace<fg::PriorFactor>(0, Pose::identity(2),
                                   fg::isotropicSigmas(3, 1.0));

    const auto order = fg::ordering::minDegree(graph);
    // The hub (key 0, degree 6) must be eliminated after the leaves
    // (ties with the final leaf allow it to land second-to-last).
    std::size_t hub_position = 0;
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == 0u)
            hub_position = i;
    EXPECT_GE(hub_position, order.size() - 2);
}

TEST(Optimizer, ConvergesOnFig4Localization)
{
    std::mt19937 rng(9);
    Values initial;
    FactorGraph graph = fig4Graph(initial, rng);
    const double initial_error = graph.totalError(initial);

    auto result = fg::optimize(graph, initial);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.finalError, 1e-10);
    EXPECT_LT(result.finalError, initial_error);
    EXPECT_GE(result.iterations, 1u);
    ASSERT_FALSE(result.history.empty());
    EXPECT_LE(result.history.back().errorAfter,
              result.history.front().errorBefore);
}

TEST(Optimizer, RespectsIterationBudget)
{
    std::mt19937 rng(10);
    Values initial;
    FactorGraph graph = fig4Graph(initial, rng);
    fg::GaussNewtonParams params;
    params.maxIterations = 1;
    auto result = fg::optimize(graph, initial, params);
    EXPECT_EQ(result.iterations, 1u);
}

TEST(Optimizer, DampingStillConverges)
{
    std::mt19937 rng(11);
    Values initial;
    FactorGraph graph = fig4Graph(initial, rng);
    fg::GaussNewtonParams params;
    params.lambda = 1e-3;
    params.maxIterations = 50;
    auto result = fg::optimize(graph, initial, params);
    EXPECT_LT(result.finalError, 1e-6);
}

TEST(Optimizer, PlanningGraphAvoidsObstacle)
{
    // Miniature planning problem (Fig. 7a): a straight-line initial
    // trajectory through an obstacle is bent around it.
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{2.0, 0.0}, 0.6);

    const std::size_t steps = 9;
    const double dt = 0.5;
    FactorGraph graph;
    Values initial;
    Vector start{0.0, 0.0, 1.0, 0.0}; // [px py vx vy]
    Vector goal{4.0, 0.0, 1.0, 0.0};
    for (std::size_t k = 0; k < steps; ++k) {
        const double s = static_cast<double>(k) /
                         static_cast<double>(steps - 1);
        Vector state{4.0 * s, 0.0, 1.0, 0.0};
        initial.insert(k, state);
        if (k + 1 < steps)
            graph.emplace<fg::SmoothFactor>(
                k, k + 1, 2, dt, fg::isotropicSigmas(4, 0.5));
        graph.emplace<fg::CollisionFreeFactor>(k, map, 4, 2, 0.4, 0.05);
    }
    graph.emplace<fg::VectorPriorFactor>(0u, start,
                                         fg::isotropicSigmas(4, 0.01));
    graph.emplace<fg::VectorPriorFactor>(steps - 1, goal,
                                         fg::isotropicSigmas(4, 0.01));

    fg::GaussNewtonParams params;
    params.lambda = 1e-2; // Hinge factors benefit from damping.
    params.maxIterations = 60;
    auto result = fg::optimize(graph, initial, params);

    // Every waypoint keeps clearance from the obstacle.
    for (std::size_t k = 0; k < steps; ++k) {
        const Vector &state = result.values.vector(k);
        const double d = map->distance(state.segment(0, 2));
        EXPECT_GT(d, 0.0) << "waypoint " << k << " collides";
    }
    // Endpoints stay pinned.
    EXPECT_LT(maxDifference(result.values.vector(0), start), 0.05);
    EXPECT_LT(maxDifference(result.values.vector(steps - 1), goal), 0.05);
}

TEST(Optimizer, ControlGraphReachesReference)
{
    // Miniature LQR-style control problem (Fig. 7b): drive a double
    // integrator to the origin.
    const std::size_t horizon = 12;
    const double dt = 0.2;
    Matrix a = Matrix::identity(2);
    a(0, 1) = dt;
    Matrix b(2, 1);
    b(1, 0) = dt;

    FactorGraph graph;
    Values initial;
    Vector x0{1.0, 0.0};
    // Keys: states 0..horizon, inputs 100..100+horizon-1.
    for (std::size_t k = 0; k <= horizon; ++k)
        initial.insert(k, Vector(2));
    for (std::size_t k = 0; k < horizon; ++k)
        initial.insert(100 + k, Vector(1));
    initial.update(0u, x0);

    graph.emplace<fg::VectorPriorFactor>(0u, x0,
                                         fg::isotropicSigmas(2, 1e-3));
    for (std::size_t k = 0; k < horizon; ++k) {
        graph.emplace<fg::DynamicsFactor>(k, 100 + k, k + 1, a, b,
                                          fg::isotropicSigmas(2, 1e-3));
        // Cost on state and input (Q and R of LQR).
        graph.emplace<fg::VectorPriorFactor>(k + 1, Vector(2),
                                             fg::isotropicSigmas(2, 1.0));
        graph.emplace<fg::VectorPriorFactor>(100 + k, Vector(1),
                                             fg::isotropicSigmas(1, 3.0));
    }

    auto result = fg::optimize(graph, initial);
    EXPECT_TRUE(result.converged);
    // Dynamics must hold tightly along the horizon.
    for (std::size_t k = 0; k < horizon; ++k) {
        const Vector &xk = result.values.vector(k);
        const Vector &uk = result.values.vector(100 + k);
        const Vector &xn = result.values.vector(k + 1);
        EXPECT_LT(maxDifference(xn, a * xk + b * uk), 1e-2);
    }
    // The final state approaches the reference.
    EXPECT_LT(result.values.vector(horizon).norm(), 0.3);
}

} // namespace
