// End-to-end tests of the command-line tools: runs the real
// runtime_server and orianna_compile binaries (paths injected by
// CMake) and checks their exported artifacts — the metrics registry
// JSON and the unified Perfetto trace — plus the argument-validation
// error paths (bad values and unknown flags must print usage and exit
// nonzero without doing work).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

#include "test_json.hpp"

namespace {

using orianna::test::JsonPtr;
using orianna::test::parseJson;

/** Run @p command silenced; returns the tool's exit status. */
int
run(const std::string &command)
{
    const int status =
        std::system((command + " >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "orianna_tools_" + name;
}

/** A two-vertex pose graph in g2o text form. */
std::string
writeTinyG2o()
{
    const std::string path = tmpPath("tiny.g2o");
    std::ofstream out(path);
    out << "VERTEX_SE2 0 0 0 0\n"
        << "VERTEX_SE2 1 1 0 0.1\n"
        << "EDGE_SE2 0 1 1 0 0.1 100 0 0 100 0 100\n";
    EXPECT_TRUE(out.good());
    return path;
}

// --- runtime_server -------------------------------------------------

TEST(RuntimeServerTool, ServesAndExportsMetricsAndTrace)
{
    const std::string metrics_path = tmpPath("server_metrics.json");
    const std::string trace_path = tmpPath("server_trace.json");
    ASSERT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --threads 4 --metrics " + metrics_path +
                  " --trace " + trace_path),
              0);

    // Metrics: the acceptance-criteria quantities must all be there.
    // The export self-reports whether instrumentation was compiled in
    // (ORIANNA_METRICS=OFF still emits a valid, empty registry).
    const JsonPtr metrics = parseJson(slurp(metrics_path));
    if (metrics->at("compiled").boolean) {
        const auto &counters = metrics->at("counters");
        EXPECT_EQ(counters.at("engine.compiles").asNumber(), 1.0);
        // The clients share one fingerprint, so after the first
        // compile the later sessions are replica-local hits; the
        // shared engine's cache is never consulted again.
        EXPECT_EQ(counters.at("engine_group.local_hits").asNumber(),
                  2.0);
        EXPECT_NEAR(
            metrics->at("derived").at("cache_hit_rate").asNumber(),
            2.0 / 3.0, 1e-6); // Serialized to 6 digits.
        // Every client passed admission control into a pinned lane.
        EXPECT_EQ(counters.at("admission.admitted").asNumber(), 3.0);
        EXPECT_EQ(counters.at("pool.pinned_tasks").asNumber(), 3.0);
        // 3 clients x 4 frames each.
        EXPECT_EQ(counters.at("frame.count").asNumber(), 12.0);
        const auto &simulate =
            metrics->at("histograms").at("frame.simulate_us");
        EXPECT_EQ(simulate.at("count").asNumber(), 12.0);
        EXPECT_GT(simulate.at("p50_us").asNumber(), 0.0);
        EXPECT_GE(simulate.at("p99_us").asNumber(),
                  simulate.at("p50_us").asNumber());
        const auto &utilization =
            metrics->at("derived").at("utilization").asObject();
        EXPECT_FALSE(utilization.empty());
        for (const auto &[unit, share] : utilization) {
            EXPECT_GT(share->asNumber(), 0.0) << unit;
            EXPECT_LE(share->asNumber(), 1.0) << unit;
        }
    } else {
        EXPECT_TRUE(
            metrics->at("derived").at("cache_hit_rate").isNull());
    }

    // Trace: one runtime process with per-session tracks; session ->
    // frame -> stage spans nested by time; hardware rows below.
    const JsonPtr trace = parseJson(slurp(trace_path));
    std::size_t sessions = 0;
    std::size_t frames = 0;
    std::size_t stages = 0;
    std::size_t hw_events = 0;
    for (const JsonPtr &event : trace->asArray()) {
        if (event->at("ph").asString() == "M")
            continue;
        EXPECT_EQ(event->at("ph").asString(), "X");
        const double pid = event->at("pid").asNumber();
        if (pid >= 1000) {
            ++hw_events;
            continue;
        }
        const std::string &category = event->at("cat").asString();
        if (category == "session")
            ++sessions;
        else if (category == "frame")
            ++frames;
        else if (category == "stage")
            ++stages;
    }
    EXPECT_EQ(sessions, 3u);
    EXPECT_EQ(frames, 12u);
    EXPECT_EQ(stages, 24u); // simulate + update per frame.
    EXPECT_GT(hw_events, 0u);
}

TEST(RuntimeServerTool, RejectsBadThreadCounts)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --threads 0"), 2);
    EXPECT_EQ(run(tool + " --threads -3"), 2);
    EXPECT_EQ(run(tool + " --threads banana"), 2);
    EXPECT_EQ(run(tool + " --threads"), 2); // Missing value.
}

TEST(RuntimeServerTool, RejectsBadServingFlags)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --replicas 0"), 2);
    EXPECT_EQ(run(tool + " --replicas -1"), 2);
    EXPECT_EQ(run(tool + " --replicas banana"), 2);
    EXPECT_EQ(run(tool + " --replicas"), 2); // Missing value.
    EXPECT_EQ(run(tool + " --queue-cap 0"), 2);
    EXPECT_EQ(run(tool + " --queue-cap -7"), 2);
    EXPECT_EQ(run(tool + " --queue-cap"), 2);
}

TEST(RuntimeServerTool, ServesWithExplicitShardingFlags)
{
    // Replicas decoupled from workers, a tight (but sufficient)
    // queue bound, and EDF ordering: the cache expectations are
    // identical because all three clients share one fingerprint.
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --threads 2 --replicas 4 --queue-cap 3 --edf"),
              0);
}

TEST(RuntimeServerTool, RejectsUnknownFlags)
{
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) + " --bogus"),
              2);
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) + " extra"), 2);
}

TEST(RuntimeServerTool, FailsOnUnwritableExportPath)
{
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --metrics /nonexistent-dir-orianna/m.json"),
              1);
}

// --- orianna_compile ------------------------------------------------

TEST(CompileTool, CompilesAndExportsUnifiedTrace)
{
    const std::string input = writeTinyG2o();
    const std::string metrics_path = tmpPath("compile_metrics.json");
    const std::string trace_path = tmpPath("compile_trace.json");
    ASSERT_EQ(run(std::string(ORIANNA_COMPILE) + " " + input +
                  " --iterate 3 --threads 2 --trace " + trace_path +
                  " --metrics " + metrics_path),
              0);

    const JsonPtr metrics = parseJson(slurp(metrics_path));
    if (metrics->at("compiled").boolean) {
        // Three sequential frames plus the served sessions' frames.
        EXPECT_GE(metrics->at("counters").at("frame.count").asNumber(),
                  3.0);
        EXPECT_GT(metrics->at("histograms")
                      .at("frame.simulate_us")
                      .at("count")
                      .asNumber(),
                  0.0);
    }

    const JsonPtr trace = parseJson(slurp(trace_path));
    std::size_t sessions = 0;
    std::size_t hw_events = 0;
    for (const JsonPtr &event : trace->asArray()) {
        if (event->at("ph").asString() != "X")
            continue;
        if (event->at("pid").asNumber() >= 1000)
            ++hw_events;
        else if (event->at("cat").asString() == "session")
            ++sessions;
    }
    // The sequential session plus the two served sessions.
    EXPECT_EQ(sessions, 3u);
    EXPECT_GT(hw_events, 0u);
}

TEST(CompileTool, RejectsBadArguments)
{
    const std::string tool = ORIANNA_COMPILE;
    const std::string input = writeTinyG2o();
    EXPECT_EQ(run(tool), 2); // No input at all.
    EXPECT_EQ(run(tool + " " + input + " --iterate 0"), 2);
    EXPECT_EQ(run(tool + " " + input + " --iterate -5"), 2);
    EXPECT_EQ(run(tool + " " + input + " --threads 0"), 2);
    EXPECT_EQ(run(tool + " " + input + " --threads x"), 2);
    EXPECT_EQ(run(tool + " " + input + " --bogus"), 2);
    EXPECT_EQ(run(tool + " " + input + " second.g2o"), 2);
    EXPECT_EQ(run(tool + " " + input + " --simd bogus"), 2);
}

TEST(CompileTool, SimdTierSelection)
{
    const std::string tool = ORIANNA_COMPILE;
    const std::string input = writeTinyG2o();
    // Scalar is always compiled and supported; auto always resolves.
    EXPECT_EQ(run(tool + " " + input + " --simd scalar --simulate"), 0);
    EXPECT_EQ(run(tool + " " + input + " --simd auto --simulate"), 0);
    // A known-but-unavailable tier warns and falls back instead of
    // failing, so pinned CI legs degrade gracefully; both names are
    // valid specs on every host and at most one is native.
    EXPECT_EQ(run(tool + " " + input + " --simd avx2 --simulate"), 0);
    EXPECT_EQ(run(tool + " " + input + " --simd neon --simulate"), 0);
}

TEST(RuntimeServerTool, SimdTierSelection)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --threads 2 --simd scalar"), 0);
    EXPECT_EQ(run(tool + " --threads 2 --simd bogus"), 2);
}

TEST(CompileTool, FailsCleanlyOnMissingInput)
{
    EXPECT_EQ(run(std::string(ORIANNA_COMPILE) +
                  " /nonexistent-dir-orianna/missing.g2o"),
              1);
}

} // namespace
