// End-to-end tests of the command-line tools: runs the real
// runtime_server and orianna_compile binaries (paths injected by
// CMake) and checks their exported artifacts — the metrics registry
// JSON and the unified Perfetto trace — plus the JSON serving
// protocol over real pipes (responses, exit codes, warm restart from
// a --cache-dir) and the argument-validation error paths (bad values
// and unknown flags must print usage and exit nonzero without doing
// work).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sys/wait.h>

#include "test_json.hpp"

namespace {

using orianna::test::JsonPtr;
using orianna::test::numberField;
using orianna::test::parseJson;
using orianna::test::parseJsonFile;
using orianna::test::slurp;

/**
 * Run @p command silenced with stdin closed (so the protocol mode
 * sees EOF instead of blocking); returns the tool's exit status.
 */
int
run(const std::string &command)
{
    const int status = std::system(
        (command + " </dev/null >/dev/null 2>&1").c_str());
    if (status == -1)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "orianna_tools_" + name;
}

struct ToolRun
{
    int status = -1;
    std::string output; //!< Captured stdout, stderr discarded.

    std::vector<std::string>
    lines() const
    {
        std::vector<std::string> out;
        std::string current;
        for (const char c : output) {
            if (c == '\n') {
                out.push_back(current);
                current.clear();
            } else {
                current += c;
            }
        }
        if (!current.empty())
            out.push_back(current);
        return out;
    }
};

/**
 * Run @p command with @p input piped to stdin (via a file named by
 * the unique @p tag) and capture stdout; protocol tests hinge on both
 * the response lines and the exit status.
 */
ToolRun
runCapture(const std::string &command, const std::string &input,
           const std::string &tag)
{
    const std::string in_path = tmpPath(tag + "_stdin.txt");
    {
        std::ofstream out(in_path);
        out << input;
        EXPECT_TRUE(out.good());
    }
    ToolRun result;
    FILE *pipe = popen(
        (command + " < " + in_path + " 2>/dev/null").c_str(), "r");
    if (pipe == nullptr)
        return result;
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        result.output.append(buffer, got);
    const int status = pclose(pipe);
    result.status =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** A two-vertex pose graph in g2o text form. */
std::string
writeTinyG2o()
{
    const std::string path = tmpPath("tiny.g2o");
    std::ofstream out(path);
    out << "VERTEX_SE2 0 0 0 0\n"
        << "VERTEX_SE2 1 1 0 0.1\n"
        << "EDGE_SE2 0 1 1 0 0.1 100 0 0 100 0 100\n";
    EXPECT_TRUE(out.good());
    return path;
}

// --- runtime_server -------------------------------------------------

TEST(RuntimeServerTool, ServesAndExportsMetricsAndTrace)
{
    const std::string metrics_path = tmpPath("server_metrics.json");
    const std::string trace_path = tmpPath("server_trace.json");
    ASSERT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --demo --threads 4 --metrics " + metrics_path +
                  " --trace " + trace_path),
              0);

    // Metrics: the acceptance-criteria quantities must all be there.
    // The export self-reports whether instrumentation was compiled in
    // (ORIANNA_METRICS=OFF still emits a valid, empty registry).
    const JsonPtr metrics = parseJsonFile(metrics_path);
    if (metrics->at("compiled").boolean) {
        const auto &counters = metrics->at("counters");
        EXPECT_EQ(counters.at("engine.compiles").asNumber(), 1.0);
        // The clients share one fingerprint, so after the first
        // compile the later sessions are replica-local hits; the
        // shared engine's cache is never consulted again.
        EXPECT_EQ(counters.at("engine_group.local_hits").asNumber(),
                  2.0);
        EXPECT_NEAR(
            metrics->at("derived").at("cache_hit_rate").asNumber(),
            2.0 / 3.0, 1e-6); // Serialized to 6 digits.
        // Every client passed admission control into a pinned lane.
        EXPECT_EQ(counters.at("admission.admitted").asNumber(), 3.0);
        EXPECT_EQ(counters.at("pool.pinned_tasks").asNumber(), 3.0);
        // 3 clients x 4 frames each.
        EXPECT_EQ(counters.at("frame.count").asNumber(), 12.0);
        const auto &simulate =
            metrics->at("histograms").at("frame.simulate_us");
        EXPECT_EQ(simulate.at("count").asNumber(), 12.0);
        EXPECT_GT(simulate.at("p50_us").asNumber(), 0.0);
        EXPECT_GE(simulate.at("p99_us").asNumber(),
                  simulate.at("p50_us").asNumber());
        const auto &utilization =
            metrics->at("derived").at("utilization").asObject();
        EXPECT_FALSE(utilization.empty());
        for (const auto &[unit, share] : utilization) {
            EXPECT_GT(share->asNumber(), 0.0) << unit;
            EXPECT_LE(share->asNumber(), 1.0) << unit;
        }
    } else {
        EXPECT_TRUE(
            metrics->at("derived").at("cache_hit_rate").isNull());
    }

    // Trace: one runtime process with per-session tracks; session ->
    // frame -> stage spans nested by time; hardware rows below.
    const JsonPtr trace = parseJsonFile(trace_path);
    std::size_t sessions = 0;
    std::size_t frames = 0;
    std::size_t stages = 0;
    std::size_t hw_events = 0;
    for (const JsonPtr &event : trace->asArray()) {
        if (event->at("ph").asString() == "M")
            continue;
        EXPECT_EQ(event->at("ph").asString(), "X");
        const double pid = event->at("pid").asNumber();
        if (pid >= 1000) {
            ++hw_events;
            continue;
        }
        const std::string &category = event->at("cat").asString();
        if (category == "session")
            ++sessions;
        else if (category == "frame")
            ++frames;
        else if (category == "stage")
            ++stages;
    }
    EXPECT_EQ(sessions, 3u);
    EXPECT_EQ(frames, 12u);
    EXPECT_EQ(stages, 24u); // simulate + update per frame.
    EXPECT_GT(hw_events, 0u);
}

TEST(RuntimeServerTool, RejectsBadThreadCounts)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --threads 0"), 2);
    EXPECT_EQ(run(tool + " --threads -3"), 2);
    EXPECT_EQ(run(tool + " --threads banana"), 2);
    EXPECT_EQ(run(tool + " --threads"), 2); // Missing value.
}

TEST(RuntimeServerTool, RejectsBadServingFlags)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --replicas 0"), 2);
    EXPECT_EQ(run(tool + " --replicas -1"), 2);
    EXPECT_EQ(run(tool + " --replicas banana"), 2);
    EXPECT_EQ(run(tool + " --replicas"), 2); // Missing value.
    EXPECT_EQ(run(tool + " --queue-cap 0"), 2);
    EXPECT_EQ(run(tool + " --queue-cap -7"), 2);
    EXPECT_EQ(run(tool + " --queue-cap"), 2);
}

TEST(RuntimeServerTool, ServesWithExplicitShardingFlags)
{
    // Replicas decoupled from workers, a tight (but sufficient)
    // queue bound, and EDF ordering: the cache expectations are
    // identical because all three clients share one fingerprint.
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --demo --threads 2 --replicas 4 --queue-cap 3"
                  " --edf"),
              0);
}

TEST(RuntimeServerTool, RejectsUnknownFlags)
{
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) + " --bogus"),
              2);
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) + " extra"), 2);
}

TEST(RuntimeServerTool, FailsOnUnwritableExportPath)
{
    EXPECT_EQ(run(std::string(ORIANNA_RUNTIME_SERVER) +
                  " --demo --metrics /nonexistent-dir-orianna/m.json"),
              1);
}

// --- runtime_server: JSON protocol over real pipes ------------------

TEST(RuntimeServerTool, ProtocolSessionRoundTrip)
{
    const std::string requests =
        R"({"op":"apps"})" "\n"
        R"({"op":"submit","app":"MobileRobot","seed":3})" "\n"
        R"({"op":"step","session":1,"frames":4})" "\n"
        "\n" // Blank lines are skipped, not answered.
        R"({"op":"values","session":1})" "\n"
        R"({"op":"close","session":1})" "\n"
        R"({"op":"health"})" "\n";
    // --precision fp64 pins the datapath against ORIANNA_PRECISION
    // in the environment: "compiles":1 below is the fp64 contract
    // (an fp32 server also compiles the reference fallback).
    const ToolRun result = runCapture(
        std::string(ORIANNA_RUNTIME_SERVER) + " --precision fp64",
        requests, "proto");
    EXPECT_EQ(result.status, 0); // No request errored.
    const auto lines = result.lines();
    ASSERT_EQ(lines.size(), 6u);
    for (const std::string &line : lines)
        EXPECT_TRUE(parseJson(line)->at("ok").boolean) << line;

    const JsonPtr apps = parseJson(lines[0]);
    bool has_mobile_robot = false;
    for (const auto &name : apps->at("apps").asArray())
        has_mobile_robot |= name->asString() == "MobileRobot";
    EXPECT_TRUE(has_mobile_robot);

    const JsonPtr submit = parseJson(lines[1]);
    EXPECT_EQ(numberField(*submit, "session"), 1.0);
    EXPECT_EQ(submit->at("fingerprint").asString().size(), 16u);

    const JsonPtr step = parseJson(lines[2]);
    EXPECT_EQ(numberField(*step, "total_frames"), 4.0);
    EXPECT_GT(numberField(*step, "cycles"), 0.0);

    const JsonPtr health = parseJson(lines[5]);
    EXPECT_EQ(numberField(health->at("health"), "compiles"), 1.0);
    // No --cache-dir: the persistent tier reports disarmed.
    EXPECT_FALSE(health->at("health").at("store").boolean);
}

TEST(RuntimeServerTool, ProtocolErrorsAnswerInlineAndSetExitCode)
{
    // A malformed line gets a typed error response, later requests
    // still serve, and the exit status reports "some request failed".
    const std::string requests =
        "{broken\n"
        R"({"op":"apps"})" "\n";
    const ToolRun result = runCapture(ORIANNA_RUNTIME_SERVER,
                                      requests, "proto_err");
    EXPECT_EQ(result.status, 3);
    const auto lines = result.lines();
    ASSERT_EQ(lines.size(), 2u);
    const JsonPtr error = parseJson(lines[0]);
    EXPECT_FALSE(error->at("ok").boolean);
    EXPECT_EQ(error->at("error").asString(), "parse_error");
    EXPECT_TRUE(parseJson(lines[1])->at("ok").boolean);
}

TEST(RuntimeServerTool, WarmRestartServesFromStoreByteIdentically)
{
    // The acceptance drill: run the server against a fresh cache
    // directory, kill it, run it again with the same requests — the
    // second process serves entirely from the persistent store (zero
    // compiles) and its response lines are byte-identical.
    const std::string dir = tmpPath("warm_cache");
    std::filesystem::remove_all(dir);
    // Pinned fp64 (see ProtocolSessionRoundTrip): single-artifact
    // store counts.
    const std::string command = std::string(ORIANNA_RUNTIME_SERVER) +
                                " --precision fp64 --cache-dir " + dir;
    const std::string requests =
        R"({"op":"submit","app":"MobileRobot","seed":7})" "\n"
        R"({"op":"step","session":1,"frames":3})" "\n"
        R"({"op":"values","session":1})" "\n"
        R"({"op":"health"})" "\n";

    const ToolRun cold = runCapture(command, requests, "cold");
    ASSERT_EQ(cold.status, 0);
    const auto cold_lines = cold.lines();
    ASSERT_EQ(cold_lines.size(), 4u);
    const JsonPtr cold_health =
        parseJson(cold_lines[3])->fields.at("health");
    EXPECT_TRUE(cold_health->at("store").boolean);
    EXPECT_EQ(numberField(*cold_health, "compiles"), 1.0);
    EXPECT_EQ(numberField(*cold_health, "store_writes"), 1.0);

    const ToolRun warm = runCapture(command, requests, "warm");
    ASSERT_EQ(warm.status, 0);
    const auto warm_lines = warm.lines();
    ASSERT_EQ(warm_lines.size(), 4u);
    // Everything up to the health snapshot is byte-identical: same
    // session ids, same cycles, same 17-digit doubles.
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(cold_lines[i], warm_lines[i]) << "line " << i;
    const JsonPtr warm_health =
        parseJson(warm_lines[3])->fields.at("health");
    EXPECT_EQ(numberField(*warm_health, "compiles"), 0.0);
    EXPECT_EQ(numberField(*warm_health, "store_hits"), 1.0);

    // --no-store on the same directory ignores it: compiles again.
    const ToolRun opted_out =
        runCapture(command + " --no-store", requests, "nostore");
    ASSERT_EQ(opted_out.status, 0);
    const JsonPtr out_health =
        parseJson(opted_out.lines()[3])->fields.at("health");
    EXPECT_FALSE(out_health->at("store").boolean);
    EXPECT_EQ(numberField(*out_health, "compiles"), 1.0);
    EXPECT_EQ(numberField(*out_health, "store_hits"), 0.0);
}

TEST(RuntimeServerTool, ConcurrentStorePopulationSurvivesRestart)
{
    // Two server processes race to populate one cache directory
    // (overlapping on MobileRobot, disjoint on the second app); the
    // atomic temp-file publish keeps every entry valid, so a third
    // warm process serves all three programs without compiling.
    const std::string dir = tmpPath("race_cache");
    std::filesystem::remove_all(dir);
    // Pinned fp64 (see ProtocolSessionRoundTrip): exact store counts.
    const std::string tool =
        std::string(ORIANNA_RUNTIME_SERVER) + " --precision fp64";
    const std::string in_a = tmpPath("race_a_stdin.txt");
    const std::string in_b = tmpPath("race_b_stdin.txt");
    {
        std::ofstream a(in_a);
        a << R"({"op":"submit","app":"MobileRobot"})" << "\n"
          << R"({"op":"submit","app":"Manipulator"})" << "\n";
        std::ofstream b(in_b);
        b << R"({"op":"submit","app":"MobileRobot"})" << "\n"
          << R"({"op":"submit","app":"Quadrotor"})" << "\n";
    }
    ASSERT_EQ(run("sh -c '" + tool + " --cache-dir " + dir + " < " +
                  in_a + " >/dev/null 2>&1 & " + tool +
                  " --cache-dir " + dir + " < " + in_b +
                  " >/dev/null 2>&1 & wait'"),
              0);
    // No half-written temp files survive the race.
    for (const auto &item :
         std::filesystem::directory_iterator(dir))
        EXPECT_EQ(item.path().filename().string().rfind(".tmp.", 0),
                  std::string::npos)
            << item.path();

    const std::string requests =
        R"({"op":"submit","app":"MobileRobot"})" "\n"
        R"({"op":"submit","app":"Manipulator"})" "\n"
        R"({"op":"submit","app":"Quadrotor"})" "\n"
        R"({"op":"health"})" "\n";
    const ToolRun warm = runCapture(tool + " --cache-dir " + dir,
                                    requests, "race_warm");
    ASSERT_EQ(warm.status, 0);
    const JsonPtr health =
        parseJson(warm.lines()[3])->fields.at("health");
    EXPECT_EQ(numberField(*health, "compiles"), 0.0);
    EXPECT_EQ(numberField(*health, "store_hits"), 3.0);
}

// --- orianna_compile ------------------------------------------------

TEST(CompileTool, CompilesAndExportsUnifiedTrace)
{
    const std::string input = writeTinyG2o();
    const std::string metrics_path = tmpPath("compile_metrics.json");
    const std::string trace_path = tmpPath("compile_trace.json");
    ASSERT_EQ(run(std::string(ORIANNA_COMPILE) + " " + input +
                  " --iterate 3 --threads 2 --trace " + trace_path +
                  " --metrics " + metrics_path),
              0);

    const JsonPtr metrics = parseJsonFile(metrics_path);
    if (metrics->at("compiled").boolean) {
        // Three sequential frames plus the served sessions' frames.
        EXPECT_GE(metrics->at("counters").at("frame.count").asNumber(),
                  3.0);
        EXPECT_GT(metrics->at("histograms")
                      .at("frame.simulate_us")
                      .at("count")
                      .asNumber(),
                  0.0);
    }

    const JsonPtr trace = parseJsonFile(trace_path);
    std::size_t sessions = 0;
    std::size_t hw_events = 0;
    for (const JsonPtr &event : trace->asArray()) {
        if (event->at("ph").asString() != "X")
            continue;
        if (event->at("pid").asNumber() >= 1000)
            ++hw_events;
        else if (event->at("cat").asString() == "session")
            ++sessions;
    }
    // The sequential session plus the two served sessions.
    EXPECT_EQ(sessions, 3u);
    EXPECT_GT(hw_events, 0u);
}

TEST(CompileTool, CacheDirSkipsRecompilationOnSecondRun)
{
    const std::string input = writeTinyG2o();
    const std::string dir = tmpPath("compile_cache");
    std::filesystem::remove_all(dir);
    const std::string command = std::string(ORIANNA_COMPILE) + " " +
                                input + " --cache-dir " + dir +
                                " --simulate";
    const ToolRun cold = runCapture(command, "", "compile_cold");
    EXPECT_EQ(cold.status, 0);
    EXPECT_NE(cold.output.find("store: wrote"), std::string::npos)
        << cold.output;

    // Same graph, same directory: the program comes off disk and the
    // simulation still runs from the stored artifact.
    const ToolRun warm = runCapture(command, "", "compile_warm");
    EXPECT_EQ(warm.status, 0);
    EXPECT_NE(warm.output.find("store: hit"), std::string::npos)
        << warm.output;
    EXPECT_NE(warm.output.find("compile skipped"), std::string::npos)
        << warm.output;

    // --no-store opts out: a normal compile, no new store traffic.
    const ToolRun opted_out =
        runCapture(command + " --no-store", "", "compile_nostore");
    EXPECT_EQ(opted_out.status, 0);
    EXPECT_EQ(opted_out.output.find("store:"), std::string::npos)
        << opted_out.output;
}

TEST(CompileTool, RejectsBadArguments)
{
    const std::string tool = ORIANNA_COMPILE;
    const std::string input = writeTinyG2o();
    EXPECT_EQ(run(tool), 2); // No input at all.
    EXPECT_EQ(run(tool + " " + input + " --iterate 0"), 2);
    EXPECT_EQ(run(tool + " " + input + " --iterate -5"), 2);
    EXPECT_EQ(run(tool + " " + input + " --threads 0"), 2);
    EXPECT_EQ(run(tool + " " + input + " --threads x"), 2);
    EXPECT_EQ(run(tool + " " + input + " --bogus"), 2);
    EXPECT_EQ(run(tool + " " + input + " second.g2o"), 2);
    EXPECT_EQ(run(tool + " " + input + " --simd bogus"), 2);
}

TEST(CompileTool, SimdTierSelection)
{
    const std::string tool = ORIANNA_COMPILE;
    const std::string input = writeTinyG2o();
    // Scalar is always compiled and supported; auto always resolves.
    EXPECT_EQ(run(tool + " " + input + " --simd scalar --simulate"), 0);
    EXPECT_EQ(run(tool + " " + input + " --simd auto --simulate"), 0);
    // A known-but-unavailable tier warns and falls back instead of
    // failing, so pinned CI legs degrade gracefully; both names are
    // valid specs on every host and at most one is native.
    EXPECT_EQ(run(tool + " " + input + " --simd avx2 --simulate"), 0);
    EXPECT_EQ(run(tool + " " + input + " --simd neon --simulate"), 0);
}

TEST(RuntimeServerTool, SimdTierSelection)
{
    const std::string tool = ORIANNA_RUNTIME_SERVER;
    EXPECT_EQ(run(tool + " --demo --threads 2 --simd scalar"), 0);
    EXPECT_EQ(run(tool + " --threads 2 --simd bogus"), 2);
}

TEST(CompileTool, FailsCleanlyOnMissingInput)
{
    EXPECT_EQ(run(std::string(ORIANNA_COMPILE) +
                  " /nonexistent-dir-orianna/missing.g2o"),
              1);
}

} // namespace
