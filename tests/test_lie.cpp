// Unit and property tests for the Lie machinery and the unified pose
// representation <so(n), T(n)>.

#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "lie/pose.hpp"
#include "lie/se3.hpp"
#include "lie/so.hpp"
#include "matrix/mac_counter.hpp"

namespace {

using orianna::lie::Pose;
using orianna::lie::Se3;
using orianna::mat::Matrix;
using orianna::mat::maxDifference;
using orianna::mat::Vector;

Vector
randomTangent(std::size_t dim, std::mt19937 &rng, double scale = 1.5)
{
    std::uniform_real_distribution<double> dist(-scale, scale);
    Vector out(dim);
    for (std::size_t i = 0; i < dim; ++i)
        out[i] = dist(rng);
    return out;
}

Pose
randomPose(std::size_t n, std::mt19937 &rng)
{
    return Pose(randomTangent(orianna::lie::tangentDim(n), rng),
                randomTangent(n, rng, 5.0));
}

TEST(So, TangentDims)
{
    EXPECT_EQ(orianna::lie::tangentDim(2), 1u);
    EXPECT_EQ(orianna::lie::tangentDim(3), 3u);
    EXPECT_THROW(orianna::lie::tangentDim(4), std::invalid_argument);
    EXPECT_EQ(orianna::lie::spaceDimFromTangent(1), 2u);
    EXPECT_EQ(orianna::lie::spaceDimFromTangent(3), 3u);
}

TEST(So, HatVeeRoundTrip)
{
    Vector phi2{0.3};
    EXPECT_EQ(maxDifference(orianna::lie::vee(orianna::lie::hat(phi2)),
                            phi2),
              0.0);
    Vector phi3{0.1, -0.2, 0.3};
    EXPECT_EQ(maxDifference(orianna::lie::vee(orianna::lie::hat(phi3)),
                            phi3),
              0.0);
}

TEST(So, HatIsSkew)
{
    Vector phi{0.4, 0.5, -0.6};
    Matrix w = orianna::lie::hat(phi);
    EXPECT_LT(maxDifference(w.transpose(), -w), 1e-15);
}

class SoExpLog : public ::testing::TestWithParam<int>
{};

TEST_P(SoExpLog, ExpIsRotationAndLogInverts)
{
    std::mt19937 rng(GetParam());
    for (std::size_t n : {2u, 3u}) {
        Vector phi =
            randomTangent(orianna::lie::tangentDim(n), rng, 1.2);
        Matrix r = orianna::lie::expSo(phi);
        EXPECT_TRUE(orianna::lie::isRotation(r));
        EXPECT_LT(maxDifference(orianna::lie::logSo(r), phi), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoExpLog, ::testing::Range(0, 16));

TEST(So, ExpOfZeroIsIdentity)
{
    EXPECT_LT(maxDifference(orianna::lie::expSo(Vector{0.0}),
                            Matrix::identity(2)),
              1e-15);
    EXPECT_LT(maxDifference(orianna::lie::expSo(Vector{0.0, 0.0, 0.0}),
                            Matrix::identity(3)),
              1e-15);
}

TEST(So, LogNearPiBranch)
{
    // Rotation by (almost) pi about a skew axis: the generic formula
    // is singular there; the dedicated branch must still recover phi.
    Vector axis{1.0 / std::sqrt(3.0), 1.0 / std::sqrt(3.0),
                1.0 / std::sqrt(3.0)};
    const double theta = std::numbers::pi - 1e-9;
    Matrix r = orianna::lie::expSo(axis * theta);
    Vector phi = orianna::lie::logSo(r);
    EXPECT_NEAR(phi.norm(), theta, 1e-6);
    EXPECT_LT(maxDifference(orianna::lie::expSo(phi), r), 1e-6);
}

TEST(So, SmallAngleStability)
{
    Vector tiny{1e-13, -2e-13, 5e-14};
    Matrix r = orianna::lie::expSo(tiny);
    EXPECT_TRUE(orianna::lie::isRotation(r));
    EXPECT_LT(maxDifference(orianna::lie::logSo(r), tiny), 1e-15);
    // Jacobians degrade gracefully to identity.
    EXPECT_LT(maxDifference(orianna::lie::rightJacobian(tiny),
                            Matrix::identity(3)),
              1e-12);
    EXPECT_LT(maxDifference(orianna::lie::rightJacobianInv(tiny),
                            Matrix::identity(3)),
              1e-12);
}

class RightJacobianProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RightJacobianProperty, FirstOrderExpansionHolds)
{
    // Exp(phi + d) ~= Exp(phi) Exp(Jr(phi) d) for small d.
    std::mt19937 rng(300 + GetParam());
    Vector phi = randomTangent(3, rng, 1.0);
    Vector d = randomTangent(3, rng, 1.0) * 1e-6;
    Matrix lhs = orianna::lie::expSo(phi + d);
    Matrix rhs = orianna::lie::expSo(phi) *
                 orianna::lie::expSo(orianna::lie::rightJacobian(phi) * d);
    EXPECT_LT(maxDifference(lhs, rhs), 1e-10);
}

TEST_P(RightJacobianProperty, InverseIsInverse)
{
    std::mt19937 rng(400 + GetParam());
    Vector phi = randomTangent(3, rng, 1.4);
    Matrix prod = orianna::lie::rightJacobian(phi) *
                  orianna::lie::rightJacobianInv(phi);
    EXPECT_LT(maxDifference(prod, Matrix::identity(3)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RightJacobianProperty,
                         ::testing::Range(0, 12));

// --- Unified pose representation ----------------------------------------

class PoseGroupAxioms : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(PoseGroupAxioms, IdentityAndInverse)
{
    const auto [n, seed] = GetParam();
    std::mt19937 rng(seed);
    Pose x = randomPose(n, rng);
    Pose id = Pose::identity(n);

    EXPECT_LT(orianna::lie::poseDistance(x.oplus(id), x), 1e-9);
    EXPECT_LT(orianna::lie::poseDistance(id.oplus(x), x), 1e-9);
    EXPECT_LT(orianna::lie::poseDistance(x.inverse().oplus(x), id), 1e-9);
    EXPECT_LT(orianna::lie::poseDistance(x.oplus(x.inverse()), id), 1e-9);
}

TEST_P(PoseGroupAxioms, OminusIsRelativePose)
{
    // a (-) b == relative pose z such that b (+) z == a (Equ. 2).
    const auto [n, seed] = GetParam();
    std::mt19937 rng(seed + 1000);
    Pose a = randomPose(n, rng);
    Pose b = randomPose(n, rng);
    Pose z = a.ominus(b);
    EXPECT_LT(orianna::lie::poseDistance(b.oplus(z), a), 1e-9);
}

TEST_P(PoseGroupAxioms, Associativity)
{
    const auto [n, seed] = GetParam();
    std::mt19937 rng(seed + 2000);
    Pose a = randomPose(n, rng);
    Pose b = randomPose(n, rng);
    Pose c = randomPose(n, rng);
    EXPECT_LT(orianna::lie::poseDistance(a.oplus(b).oplus(c),
                                         a.oplus(b.oplus(c))),
              1e-9);
}

TEST_P(PoseGroupAxioms, RetractLocalCoordinatesRoundTrip)
{
    const auto [n, seed] = GetParam();
    std::mt19937 rng(seed + 3000);
    Pose x = randomPose(n, rng);
    Vector delta = randomTangent(x.dof(), rng, 0.7);
    Pose moved = x.retract(delta);
    EXPECT_LT(maxDifference(x.localCoordinates(moved), delta), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PoseGroupAxioms,
    ::testing::Values(std::pair{2, 1}, std::pair{2, 2}, std::pair{2, 3},
                      std::pair{3, 1}, std::pair{3, 2}, std::pair{3, 3},
                      std::pair{3, 4}, std::pair{3, 5}));

TEST(Pose, VectorRoundTrip)
{
    Pose x(Vector{0.2, -0.1, 0.4}, Vector{1.0, 2.0, 3.0});
    Pose back = Pose::fromVector(3, x.asVector());
    EXPECT_LT(orianna::lie::poseDistance(x, back), 1e-15);
    EXPECT_EQ(x.dof(), 6u);
    EXPECT_EQ(Pose::identity(2).dof(), 3u);
}

TEST(Pose, DimensionMismatchThrows)
{
    EXPECT_THROW(Pose(Vector{0.1}, Vector{1.0, 2.0, 3.0}),
                 std::invalid_argument);
    Pose planar = Pose::identity(2);
    Pose spatial = Pose::identity(3);
    EXPECT_THROW(planar.oplus(spatial), std::invalid_argument);
    EXPECT_THROW(planar.retract(Vector{0.0}), std::invalid_argument);
}

// --- SE(3) baseline and Fig. 8 conversions ------------------------------

TEST(Se3, ExpLogRoundTrip)
{
    std::mt19937 rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        Vector twist = randomTangent(6, rng, 1.2);
        Se3 t = Se3::exp(twist);
        EXPECT_LT(maxDifference(t.log(), twist), 1e-8);
    }
}

TEST(Se3, ComposeMatchesUnifiedOplus)
{
    // Fig. 8: the two representations describe the same rigid motion,
    // so composing in SE(3) and composing with (+) must agree.
    std::mt19937 rng(78);
    for (int trial = 0; trial < 10; ++trial) {
        Pose a = randomPose(3, rng);
        Pose b = randomPose(3, rng);
        Se3 composed = Se3::fromPose(a).compose(Se3::fromPose(b));
        EXPECT_LT(orianna::lie::poseDistance(composed.toPose(),
                                             a.oplus(b)),
                  1e-9);
    }
}

TEST(Se3, BetweenMatchesUnifiedOminus)
{
    std::mt19937 rng(79);
    for (int trial = 0; trial < 10; ++trial) {
        Pose a = randomPose(3, rng);
        Pose b = randomPose(3, rng);
        Se3 rel = Se3::fromPose(b).between(Se3::fromPose(a));
        EXPECT_LT(orianna::lie::poseDistance(rel.toPose(), a.ominus(b)),
                  1e-9);
    }
}

TEST(Se3, InverseAndRetract)
{
    std::mt19937 rng(80);
    Se3 t = Se3::exp(randomTangent(6, rng, 1.0));
    EXPECT_LT(orianna::lie::se3Distance(t.compose(t.inverse()), Se3()),
              1e-10);

    Vector delta = randomTangent(6, rng, 0.5);
    Se3 moved = t.retract(delta);
    EXPECT_LT(maxDifference(t.localCoordinates(moved), delta), 1e-8);
}

TEST(Se3, TranslationJacobianRelatesTangents)
{
    // Fig. 8 bottom: t = V(phi) rho links se(3) to <so(3),T(3)>.
    std::mt19937 rng(81);
    Vector twist = randomTangent(6, rng, 1.0);
    Se3 t = Se3::exp(twist);
    Vector phi = twist.segment(0, 3);
    Vector rho = twist.segment(3, 3);
    Vector expected =
        orianna::lie::se3TranslationJacobian(phi) * rho;
    EXPECT_LT(maxDifference(t.translation(), expected), 1e-12);
}

TEST(Se3, PaddedRetractionCostsMoreMacs)
{
    // The motivating efficiency claim of Sec. 4.1: the per-iteration
    // Gauss-Newton update (retraction) is more expensive in SE(3)
    // because it needs the 6-dim exponential (with the V matrix) and a
    // padded 4x4 product, versus a 3-dim exponential and a 3x3 product
    // for <so(3),T(3)>.
    std::mt19937 rng(82);
    Pose a = randomPose(3, rng);
    Se3 sa = Se3::fromPose(a);
    Vector delta = randomTangent(6, rng, 0.3);

    orianna::mat::MacScope unified_scope;
    (void)a.retract(delta);
    const std::uint64_t unified = unified_scope.elapsed();

    orianna::mat::MacScope padded_scope;
    (void)sa.retract(delta);
    const std::uint64_t padded = padded_scope.elapsed();

    EXPECT_GT(unified, 0u);
    EXPECT_GT(padded, unified);
}

} // namespace
