// SIMD kernel layer tests (DESIGN.md §10): tier registry and
// selection, dispatch counters, and the randomized scalar-vs-SIMD
// parity suite over tiny, odd and tail-heavy shapes.
//
// Parity tolerance: fast tiers reassociate reductions (wide
// accumulators, FMA), so each output element may differ from the
// scalar reference by a few rounding errors of the *absolute-value*
// accumulation sum_i |a_i * b_i| — the result itself can be tiny
// through cancellation, which makes result-relative bounds unusable.
// We compute that absolute accumulation with the scalar kernels on
// |a|, |b| and allow kToleranceFactor units of double epsilon of it.

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "matrix/dense.hpp"
#include "matrix/kernels.hpp"
#include "matrix/simd.hpp"

namespace {

using namespace orianna;
namespace kernels = orianna::mat::kernels;
using kernels::KernelOp;
using kernels::KernelTable;
using kernels::ScopedKernelTier;
using kernels::SimdTier;

// ~450 eps of the absolute accumulation: loose enough for any
// accumulation order over these sizes, tight enough that a wrong
// element (an O(1) relative error) fails by many orders of magnitude.
constexpr double kToleranceFactor = 2000.0;

double
tolerance(double abs_accumulation)
{
    constexpr double eps = std::numeric_limits<double>::epsilon();
    return kToleranceFactor * eps * abs_accumulation + 1e-290;
}

std::vector<double>
randomBuffer(std::size_t n, std::mt19937 &rng)
{
    // Mixed-sign entries so cancellation actually happens.
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> out(n);
    for (double &v : out)
        v = dist(rng);
    return out;
}

std::vector<double>
absOf(const std::vector<double> &v)
{
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = std::fabs(v[i]);
    return out;
}

/** Every compiled-and-supported fast (non-scalar) tier on this host. */
std::vector<SimdTier>
supportedFastTiers()
{
    std::vector<SimdTier> out;
    for (SimdTier tier : kernels::compiledTiers())
        if (tier != SimdTier::Scalar && kernels::tierSupported(tier))
            out.push_back(tier);
    return out;
}

// --- Registry and selection -----------------------------------------

TEST(SimdRegistry, ScalarTierAlwaysPresent)
{
    EXPECT_TRUE(kernels::tierCompiled(SimdTier::Scalar));
    EXPECT_TRUE(kernels::tierSupported(SimdTier::Scalar));
    const KernelTable *table = kernels::kernelTable(SimdTier::Scalar);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->tier, SimdTier::Scalar);

    const auto tiers = kernels::compiledTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), SimdTier::Scalar);
}

TEST(SimdRegistry, DetectedTierIsSupported)
{
    EXPECT_TRUE(kernels::tierSupported(kernels::detectTier()));
    EXPECT_FALSE(kernels::simdCapabilityString().empty());
}

TEST(SimdRegistry, SpecSelection)
{
    const ScopedKernelTier restore(kernels::activeTier());

    const auto automatic = kernels::selectTierFromSpec("auto");
    EXPECT_TRUE(automatic.ok);
    EXPECT_EQ(automatic.tier, kernels::detectTier());

    const auto scalar = kernels::selectTierFromSpec("scalar");
    EXPECT_TRUE(scalar.ok);
    EXPECT_EQ(scalar.tier, SimdTier::Scalar);
    EXPECT_TRUE(scalar.message.empty());
    EXPECT_EQ(kernels::activeTier(), SimdTier::Scalar);

    const auto bogus = kernels::selectTierFromSpec("bogus");
    EXPECT_FALSE(bogus.ok);
    EXPECT_NE(bogus.message.find("unknown SIMD tier"),
              std::string::npos);
    // A failed selection must leave the active table alone.
    EXPECT_EQ(kernels::activeTier(), SimdTier::Scalar);
}

TEST(SimdRegistry, UnsupportedSpecFallsBackWithWarning)
{
    const ScopedKernelTier restore(kernels::activeTier());
    // At most one of avx2/neon can be supported on one host; pick an
    // unsupported-but-valid name if one exists.
    for (SimdTier tier : {SimdTier::Avx2, SimdTier::Neon}) {
        if (kernels::tierSupported(tier))
            continue;
        const auto fallback =
            kernels::selectTierFromSpec(kernels::simdTierName(tier));
        EXPECT_TRUE(fallback.ok);
        EXPECT_EQ(fallback.tier, kernels::detectTier());
        EXPECT_FALSE(fallback.message.empty());
        return;
    }
    GTEST_SKIP() << "every fast tier is supported here";
}

TEST(SimdRegistry, ScopedTierRestores)
{
    const SimdTier before = kernels::activeTier();
    {
        const ScopedKernelTier pin(SimdTier::Scalar);
        EXPECT_TRUE(pin.ok());
        EXPECT_EQ(kernels::activeTier(), SimdTier::Scalar);
    }
    EXPECT_EQ(kernels::activeTier(), before);
}

TEST(SimdRegistry, KernelOpNamesAreUnique)
{
    std::vector<std::string> names;
    for (std::size_t op = 0; op < kernels::kKernelOpCount; ++op)
        names.emplace_back(
            kernels::kernelOpName(static_cast<KernelOp>(op)));
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_NE(names[i], names[j]);
}

TEST(SimdCounters, DispatchedCallsAreCounted)
{
    const ScopedKernelTier pin(SimdTier::Scalar);
    kernels::resetKernelCallCounts();

    std::mt19937 rng(1);
    const auto a = randomBuffer(64, rng);
    const auto b = randomBuffer(64, rng);
    (void)kernels::dot(a.data(), b.data(), 64);
    EXPECT_EQ(kernels::kernelCallCount(KernelOp::Dot), 1u);

    // Below the micro-dispatch cutoff the inline loop runs: no count.
    (void)kernels::dot(a.data(), b.data(), 4);
    EXPECT_EQ(kernels::kernelCallCount(KernelOp::Dot), 1u);

    kernels::resetKernelCallCounts();
    EXPECT_EQ(kernels::kernelCallCount(KernelOp::Dot), 0u);
}

// --- Randomized scalar-vs-SIMD parity -------------------------------

struct Shape
{
    std::size_t m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},    {1, 3, 2},    {3, 5, 4},    {5, 7, 3},
    {8, 8, 8},    {17, 31, 23}, {33, 40, 37}, {64, 64, 64},
    {65, 67, 63},
};

class FastTierParity : public ::testing::TestWithParam<int>
{
  protected:
    /** The fast tier under test, or skip when this host has none. */
    const KernelTable *
    table()
    {
        const auto tiers = supportedFastTiers();
        if (tiers.empty())
            return nullptr;
        return kernels::kernelTable(tiers[static_cast<std::size_t>(
            GetParam() % static_cast<int>(tiers.size()))]);
    }
};

TEST_P(FastTierParity, GemmFamilyWithinTolerance)
{
    const KernelTable *fast = table();
    if (fast == nullptr)
        GTEST_SKIP() << "no fast SIMD tier supported on this host";

    std::mt19937 rng(90 + GetParam());
    for (const Shape &s : kShapes) {
        const auto a = randomBuffer(s.m * s.k, rng);
        const auto b = randomBuffer(s.k * s.n, rng);
        const auto a_abs = absOf(a);
        const auto b_abs = absOf(b);

        // gemm: want/got/abs-accumulation, all freshly zeroed.
        std::vector<double> want(s.m * s.n, 0.0);
        std::vector<double> got(s.m * s.n, 0.0);
        std::vector<double> bound(s.m * s.n, 0.0);
        kernels::scalar::gemm(a.data(), b.data(), want.data(), s.m,
                              s.k, s.n);
        fast->gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
        kernels::scalar::gemm(a_abs.data(), b_abs.data(), bound.data(),
                              s.m, s.k, s.n);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_NEAR(got[i], want[i], tolerance(bound[i]))
                << "gemm " << s.m << "x" << s.k << "x" << s.n
                << " element " << i;

        // gemmTransA: a stored k x m.
        const auto at = randomBuffer(s.k * s.m, rng);
        const auto at_abs = absOf(at);
        std::fill(want.begin(), want.end(), 0.0);
        std::fill(got.begin(), got.end(), 0.0);
        std::fill(bound.begin(), bound.end(), 0.0);
        kernels::scalar::gemmTransA(at.data(), b.data(), want.data(),
                                    s.k, s.m, s.n);
        fast->gemmTransA(at.data(), b.data(), got.data(), s.k, s.m,
                         s.n);
        kernels::scalar::gemmTransA(at_abs.data(), b_abs.data(),
                                    bound.data(), s.k, s.m, s.n);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_NEAR(got[i], want[i], tolerance(bound[i]))
                << "gemmTransA " << s.k << "x" << s.m << "x" << s.n
                << " element " << i;

        // gemmTransB: b stored n x k.
        const auto bt = randomBuffer(s.n * s.k, rng);
        const auto bt_abs = absOf(bt);
        std::fill(want.begin(), want.end(), 0.0);
        std::fill(got.begin(), got.end(), 0.0);
        std::fill(bound.begin(), bound.end(), 0.0);
        kernels::scalar::gemmTransB(a.data(), bt.data(), want.data(),
                                    s.m, s.k, s.n);
        fast->gemmTransB(a.data(), bt.data(), got.data(), s.m, s.k,
                         s.n);
        kernels::scalar::gemmTransB(a_abs.data(), bt_abs.data(),
                                    bound.data(), s.m, s.k, s.n);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_NEAR(got[i], want[i], tolerance(bound[i]))
                << "gemmTransB " << s.m << "x" << s.k << "x" << s.n
                << " element " << i;

        // gemv / gemvTransA on the same operands.
        const auto x = randomBuffer(s.k, rng);
        const auto x_abs = absOf(x);
        std::vector<double> ywant(s.m, 0.0), ygot(s.m, 0.0),
            ybound(s.m, 0.0);
        kernels::scalar::gemv(a.data(), x.data(), ywant.data(), s.m,
                              s.k);
        fast->gemv(a.data(), x.data(), ygot.data(), s.m, s.k);
        kernels::scalar::gemv(a_abs.data(), x_abs.data(),
                              ybound.data(), s.m, s.k);
        for (std::size_t i = 0; i < s.m; ++i)
            EXPECT_NEAR(ygot[i], ywant[i], tolerance(ybound[i]))
                << "gemv row " << i;

        const auto xm = randomBuffer(s.m, rng);
        const auto xm_abs = absOf(xm);
        std::vector<double> twant(s.k, 0.0), tgot(s.k, 0.0),
            tbound(s.k, 0.0);
        kernels::scalar::gemvTransA(a.data(), xm.data(), twant.data(),
                                    s.m, s.k);
        fast->gemvTransA(a.data(), xm.data(), tgot.data(), s.m, s.k);
        kernels::scalar::gemvTransA(a_abs.data(), xm_abs.data(),
                                    tbound.data(), s.m, s.k);
        for (std::size_t i = 0; i < s.k; ++i)
            EXPECT_NEAR(tgot[i], twant[i], tolerance(tbound[i]))
                << "gemvTransA col " << i;
    }
}

TEST_P(FastTierParity, TransposeIsExact)
{
    const KernelTable *fast = table();
    if (fast == nullptr)
        GTEST_SKIP() << "no fast SIMD tier supported on this host";

    // Transpose moves values without arithmetic: bit-exact always.
    std::mt19937 rng(17 + GetParam());
    for (const Shape &s : kShapes) {
        const auto a = randomBuffer(s.m * s.n, rng);
        std::vector<double> want(s.n * s.m), got(s.n * s.m);
        kernels::scalar::transpose(a.data(), want.data(), s.m, s.n);
        fast->transpose(a.data(), got.data(), s.m, s.n);
        EXPECT_EQ(want, got) << s.m << "x" << s.n;
    }
}

TEST_P(FastTierParity, MicroKernelsWithinTolerance)
{
    const KernelTable *fast = table();
    if (fast == nullptr)
        GTEST_SKIP() << "no fast SIMD tier supported on this host";

    std::mt19937 rng(300 + GetParam());
    const std::size_t lengths[] = {1, 2, 3, 4, 7, 15, 16, 17,
                                   31, 32, 63, 64, 65, 100};
    const std::size_t strides[] = {1, 2, 3};
    for (const std::size_t n : lengths) {
        const auto a = randomBuffer(n, rng);
        const auto b = randomBuffer(n, rng);
        const auto a_abs = absOf(a);
        const auto b_abs = absOf(b);

        const double abs_acc =
            kernels::scalar::dot(a_abs.data(), b_abs.data(), n);
        EXPECT_NEAR(fast->dot(a.data(), b.data(), n),
                    kernels::scalar::dot(a.data(), b.data(), n),
                    tolerance(abs_acc))
            << "dot n=" << n;

        EXPECT_NEAR(
            fast->fusedSubtractDot(0.75, a.data(), b.data(), n),
            kernels::scalar::fusedSubtractDot(0.75, a.data(), b.data(),
                                              n),
            tolerance(abs_acc + 0.75))
            << "fusedSubtractDot n=" << n;

        for (const std::size_t sa : strides)
            for (const std::size_t sb : strides) {
                const auto as = randomBuffer(n * sa, rng);
                const auto bs = randomBuffer(n * sb, rng);
                const double strided_abs = kernels::scalar::dotStrided(
                    absOf(as).data(), sa, absOf(bs).data(), sb, n);
                EXPECT_NEAR(
                    fast->dotStrided(as.data(), sa, bs.data(), sb, n),
                    kernels::scalar::dotStrided(as.data(), sa,
                                                bs.data(), sb, n),
                    tolerance(strided_abs))
                    << "dotStrided n=" << n << " sa=" << sa
                    << " sb=" << sb;
            }

        for (const std::size_t sy : strides) {
            auto y_want = randomBuffer(n * sy, rng);
            auto y_got = y_want;
            const double alpha = 0.6180339887;
            kernels::scalar::axpyNegStrided(y_want.data(), sy, alpha,
                                            a.data(), n);
            fast->axpyNegStrided(y_got.data(), sy, alpha, a.data(), n);
            for (std::size_t i = 0; i < y_want.size(); ++i)
                EXPECT_NEAR(y_got[i], y_want[i],
                            tolerance(std::fabs(y_want[i]) + 1.0))
                    << "axpyNegStrided n=" << n << " sy=" << sy
                    << " element " << i;
        }

        auto rj_want = randomBuffer(n, rng);
        auto ri_want = randomBuffer(n, rng);
        auto rj_got = rj_want;
        auto ri_got = ri_want;
        const double c = 0.8;
        const double s = 0.6;
        kernels::scalar::givensRotate(rj_want.data(), ri_want.data(),
                                      c, s, n);
        fast->givensRotate(rj_got.data(), ri_got.data(), c, s, n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(rj_got[i], rj_want[i], tolerance(2.0))
                << "givensRotate rj " << i;
            EXPECT_NEAR(ri_got[i], ri_want[i], tolerance(2.0))
                << "givensRotate ri " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FastTierParity,
                         ::testing::Range(0, 4));

// --- End-to-end application parity ----------------------------------

class AppTierParity : public ::testing::TestWithParam<apps::AppKind>
{};

TEST_P(AppTierParity, FastTierSolvesMatchScalarWithinTolerance)
{
    const auto tiers = supportedFastTiers();
    if (tiers.empty())
        GTEST_SKIP() << "no fast SIMD tier supported on this host";

    std::vector<fg::Values> scalar_solved;
    {
        const ScopedKernelTier pin(SimdTier::Scalar);
        apps::BenchmarkApp bench = apps::buildApp(GetParam(), 7);
        scalar_solved = bench.app.solveSoftware();
    }

    for (SimdTier tier : tiers) {
        const ScopedKernelTier pin(tier);
        ASSERT_TRUE(pin.ok());
        apps::BenchmarkApp bench = apps::buildApp(GetParam(), 7);
        const auto solved = bench.app.solveSoftware();

        // Same mission verdict, and per-variable agreement within the
        // documented end-to-end bound (DESIGN.md §10): kernel-level
        // rounding differences pass through a converging solve.
        ASSERT_EQ(solved.size(), scalar_solved.size());
        bool success_scalar = false;
        bool success_fast = false;
        {
            const ScopedKernelTier check(SimdTier::Scalar);
            success_scalar = bench.success(scalar_solved);
            success_fast = bench.success(solved);
        }
        EXPECT_EQ(success_fast, success_scalar)
            << apps::appName(GetParam()) << " on "
            << kernels::simdTierName(tier);
        for (std::size_t alg = 0; alg < solved.size(); ++alg) {
            const fg::Values &a = scalar_solved[alg];
            const fg::Values &b = solved[alg];
            for (fg::Key key : a.keys()) {
                if (a.isPose(key)) {
                    EXPECT_LT(mat::maxDifference(a.pose(key).phi(),
                                                 b.pose(key).phi()),
                              1e-6);
                    EXPECT_LT(mat::maxDifference(a.pose(key).t(),
                                                 b.pose(key).t()),
                              1e-6);
                } else {
                    EXPECT_LT(mat::maxDifference(a.vector(key),
                                                 b.vector(key)),
                              1e-6);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppTierParity,
    ::testing::Values(apps::AppKind::MobileRobot,
                      apps::AppKind::Manipulator,
                      apps::AppKind::AutoVehicle,
                      apps::AppKind::Quadrotor),
    [](const auto &info) {
        return std::string(apps::appName(info.param));
    });

} // namespace
