// Tests for the observability layer (DESIGN.md §6): the sharded
// metrics instruments, the registry JSON snapshot, the unified trace
// collector, and the cross-sink consistency invariant — the same
// integer microsecond durations feed the stage histograms and the
// trace spans, so their totals must agree exactly.

#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "fg/factors.hpp"
#include "hw/accelerator.hpp"
#include "matrix/mac_counter.hpp"
#include "runtime/engine.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace_sink.hpp"
#include "test_fg_common.hpp"
#include "test_json.hpp"

namespace {

using namespace orianna;
using orianna::test::parseJson;
using orianna::test::randomPose;
using orianna::test::randomVector;
using runtime::Counter;
using runtime::Gauge;
using runtime::Histogram;
using runtime::MetricsRegistry;
using runtime::TraceCollector;

/**
 * Restore the process-wide gates the tests toggle: metrics recording
 * defaults to on, trace collection defaults to off.
 */
struct GateGuard
{
    ~GateGuard()
    {
        MetricsRegistry::setEnabled(true);
        TraceCollector::setEnabled(false);
        TraceCollector::global().clear();
    }
};

/** The runtime_server odometry chain, sized down for unit tests. */
fg::FactorGraph
chainGraph(const std::vector<lie::Pose> &truth)
{
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(
            i, i + 1, truth[i].ominus(truth[i - 1]),
            fg::isotropicSigmas(6, 0.05));
    return graph;
}

std::vector<lie::Pose>
chainTruth()
{
    std::vector<lie::Pose> truth;
    for (int i = 0; i < 4; ++i)
        truth.emplace_back(
            mat::Vector{0.1 * i, 0.02 * i, 0.05 * i},
            mat::Vector{0.4 * i, 0.04 * i, 0.0});
    return truth;
}

fg::Values
chainInitial(const std::vector<lie::Pose> &truth, double perturb)
{
    fg::Values initial;
    for (std::size_t i = 0; i < truth.size(); ++i)
        initial.insert(i + 1,
                       truth[i].retract(mat::Vector{
                           perturb, -perturb, perturb, -perturb,
                           perturb, -perturb}));
    return initial;
}

// --- Instruments ----------------------------------------------------

// Recording tests only make sense when the instruments are compiled
// in; under -DORIANNA_METRICS=OFF every add/observe is a constexpr
// no-op by design, which is covered by the *Zeroed* tests instead.
#define SKIP_WITHOUT_METRICS()                                         \
    if constexpr (!runtime::kMetricsCompiled)                          \
    GTEST_SKIP() << "built with ORIANNA_METRICS=OFF"

TEST(MetricsCounter, ShardedAddsSumExactly)
{
    SKIP_WITHOUT_METRICS();
    Counter counter;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                counter.add();
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsGauge, SetAddMax)
{
    SKIP_WITHOUT_METRICS();
    Gauge gauge;
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 7);
    gauge.add(-3);
    EXPECT_EQ(gauge.value(), 4);
    gauge.max(9);
    EXPECT_EQ(gauge.value(), 9);
    gauge.max(2); // Lower: must not regress.
    EXPECT_EQ(gauge.value(), 9);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(MetricsHistogram, PowerOfTwoBucketBounds)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 0u);
    EXPECT_EQ(Histogram::bucketOf(2), 1u);
    EXPECT_EQ(Histogram::bucketOf(3), 1u);
    EXPECT_EQ(Histogram::bucketOf(4), 2u);
    EXPECT_EQ(Histogram::bucketOf(1023), 9u);
    EXPECT_EQ(Histogram::bucketOf(1024), 10u);
    EXPECT_EQ(Histogram::bucketLowerUs(0), 0u);
    EXPECT_EQ(Histogram::bucketLowerUs(10), 1024u);
}

TEST(MetricsHistogram, OverflowBucketCountsExtremeLatencies)
{
    SKIP_WITHOUT_METRICS();
    Histogram histogram;
    const std::uint64_t limit = std::uint64_t{1} << Histogram::kBuckets;
    histogram.observe(limit - 1); // Largest finite-bucket sample.
    histogram.observe(limit);     // First overflow sample.
    histogram.observe(limit * 8); // Way past the range.
    histogram.observe(UINT64_MAX / 2);
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_EQ(histogram.overflowCount(), 3u);
    EXPECT_EQ(histogram.bucketCount(Histogram::kBuckets - 1), 1u);
    // Exact integer sum even with extreme samples.
    EXPECT_EQ(histogram.sumUs(),
              (limit - 1) + limit + limit * 8 + UINT64_MAX / 2);
    // The overflow bucket clamps percentile estimates to its lower
    // bound rather than inventing a value beyond the range.
    EXPECT_EQ(histogram.percentile(0.99),
              static_cast<double>(limit));
}

TEST(MetricsHistogram, PercentileInterpolatesWithinBucket)
{
    SKIP_WITHOUT_METRICS();
    Histogram histogram;
    for (int i = 0; i < 100; ++i)
        histogram.observe(10); // All in bucket [8, 16).
    const double p50 = histogram.percentile(0.50);
    EXPECT_GE(p50, 8.0);
    EXPECT_LE(p50, 16.0);
    EXPECT_EQ(histogram.percentile(0.0), 8.0);
}

// --- Registry snapshots ---------------------------------------------

TEST(MetricsRegistryJson, ZeroedRegistryIsValidJson)
{
    GateGuard guard;
    auto &registry = MetricsRegistry::global();
    registry.reset();

    // Engine::metricsJson before any session: every registered
    // instrument reads zero, derived rates are null, and the document
    // still parses.
    const auto json = parseJson(runtime::Engine::metricsJson());
    EXPECT_EQ(json->at("compiled").kind,
              orianna::test::JsonValue::Kind::Bool);
    for (const auto &[name, value] : json->at("counters").asObject())
        EXPECT_EQ(value->asNumber(), 0.0) << name;
    EXPECT_TRUE(json->at("derived").at("cache_hit_rate").isNull());
    EXPECT_TRUE(
        json->at("derived").at("utilization").asObject().empty());
}

TEST(MetricsRegistryJson, ServedSessionsProduceDerivedRates)
{
    SKIP_WITHOUT_METRICS();
    GateGuard guard;
    MetricsRegistry::setEnabled(true);
    auto &registry = MetricsRegistry::global();
    registry.reset();

    const auto truth = chainTruth();
    const fg::FactorGraph graph = chainGraph(truth);
    // Pinned fp64: exact compile counters — an fp32 engine would also
    // compile each session's reference fallback.
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp64;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    for (int client = 0; client < 3; ++client) {
        runtime::Session session = engine.session(
            graph, chainInitial(truth, 0.01 * (client + 1)));
        session.iterate(2);
    }

    const auto json = parseJson(runtime::Engine::metricsJson());
    EXPECT_EQ(orianna::test::counterValue(*json, "engine.compiles"),
              1.0);
    EXPECT_EQ(orianna::test::counterValue(*json, "engine.cache_hits"),
              2.0);
    // The serializer prints 6 significant digits.
    EXPECT_NEAR(json->at("derived").at("cache_hit_rate").asNumber(),
                2.0 / 3.0, 1e-6);
    // Six frames served; the stage histograms carry all of them.
    EXPECT_EQ(orianna::test::counterValue(*json, "frame.count"), 6.0);
    EXPECT_EQ(json->at("histograms")
                  .at("frame.simulate_us")
                  .at("count")
                  .asNumber(),
              6.0);
    // Every simulated unit kind reports a utilization share in (0,1].
    const auto &utilization =
        json->at("derived").at("utilization").asObject();
    EXPECT_FALSE(utilization.empty());
    for (const auto &[unit, share] : utilization) {
        EXPECT_GT(share->asNumber(), 0.0) << unit;
        EXPECT_LE(share->asNumber(), 1.0) << unit;
    }
}

TEST(MetricsRegistryJson, DisabledRecordingLeavesRegistryUntouched)
{
    GateGuard guard;
    auto &registry = MetricsRegistry::global();
    registry.reset();
    MetricsRegistry::setEnabled(false);

    const auto truth = chainTruth();
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    runtime::Session session =
        engine.session(chainGraph(truth), chainInitial(truth, 0.02));
    session.iterate(2);

    EXPECT_EQ(registry.counter("frame.count").value(), 0u);
    EXPECT_EQ(registry.counter("engine.compiles").value(), 0u);
    EXPECT_EQ(registry.histogram("frame.simulate_us").count(), 0u);
}

// --- Unified trace sink ---------------------------------------------

TEST(TraceSink, WriteThrowsOnUnwritablePath)
{
    TraceCollector collector;
    EXPECT_THROW(
        collector.write("/nonexistent-dir-orianna/trace.json"),
        std::runtime_error);
}

TEST(TraceSink, SpanSumsMatchHistogramSumsExactly)
{
    SKIP_WITHOUT_METRICS();
    GateGuard guard;
    MetricsRegistry::setEnabled(true);
    TraceCollector::setEnabled(true);
    auto &registry = MetricsRegistry::global();
    auto &collector = TraceCollector::global();
    registry.reset();
    collector.clear();

    const auto truth = chainTruth();
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    constexpr std::size_t kFrames = 3;
    {
        runtime::Session session = engine.session(
            chainGraph(truth), chainInitial(truth, 0.02));
        session.iterate(kFrames);
    } // Destructor reports the enclosing "session" span.

    std::map<std::string, std::uint64_t> span_totals;
    std::map<std::string, std::uint64_t> span_counts;
    for (const runtime::RuntimeSpan &span : collector.spans()) {
        const std::string key = span.category == "frame"
                                    ? std::string("frame")
                                    : span.name;
        span_totals[key] += span.durUs;
        ++span_counts[key];
    }

    // The invariant the shared integer durations buy: per stage, the
    // histogram total equals the sum of that stage's span durations.
    EXPECT_EQ(span_counts["frame"], kFrames);
    EXPECT_EQ(span_counts["session"], 1u);
    EXPECT_EQ(registry.histogram("frame.total_us").count(), kFrames);
    EXPECT_EQ(span_totals["frame"],
              registry.histogram("frame.total_us").sumUs());
    EXPECT_EQ(span_totals["simulate"],
              registry.histogram("frame.simulate_us").sumUs());
    EXPECT_EQ(span_totals["update"],
              registry.histogram("frame.update_us").sumUs());
    // Every frame attached its hardware schedule under the same track.
    EXPECT_GT(collector.hwEventCount(), 0u);
    EXPECT_EQ(registry.counter("hw.frames").value(), kFrames);
}

TEST(TraceSink, StageSpansNestInsideTheirFrame)
{
    GateGuard guard;
    TraceCollector::setEnabled(true);
    auto &collector = TraceCollector::global();
    collector.clear();

    const auto truth = chainTruth();
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true));
    runtime::Session session =
        engine.session(chainGraph(truth), chainInitial(truth, 0.02));
    session.step();

    std::vector<runtime::RuntimeSpan> frames;
    std::vector<runtime::RuntimeSpan> stages;
    for (const runtime::RuntimeSpan &span : collector.spans()) {
        if (span.category == "frame")
            frames.push_back(span);
        else if (span.category == "stage")
            stages.push_back(span);
    }
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(stages.size(), 2u);
    for (const runtime::RuntimeSpan &stage : stages) {
        EXPECT_GE(stage.startUs, frames[0].startUs);
        EXPECT_LE(stage.startUs + stage.durUs,
                  frames[0].startUs + frames[0].durUs);
        EXPECT_EQ(stage.track, frames[0].track);
    }
}

// --- Randomized scheduling property ---------------------------------

/** A random small pose-chain program, deterministic per seed. */
struct FuzzCase
{
    comp::Program program;
    fg::Values values;
};

FuzzCase
makeFuzzCase(unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> length(3, 6);
    const std::size_t n = length(rng);

    FuzzCase fuzz;
    fg::FactorGraph graph;
    lie::Pose current = lie::Pose::identity(3);
    std::vector<lie::Pose> truth;
    for (std::size_t i = 0; i < n; ++i) {
        truth.push_back(current);
        fuzz.values.insert(i,
                           current.retract(randomVector(6, rng, 0.05)));
        const lie::Pose step = randomPose(3, rng, 0.2, 1.0);
        if (i + 1 < n)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, step, fg::isotropicSigmas(6, 0.1));
        current = current.oplus(step);
    }
    graph.emplace<fg::PriorFactor>(0u, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    if (n > 3) // Loop closure on the longer chains.
        graph.emplace<fg::BetweenFactor>(
            0u, n - 1, truth[n - 1].ominus(truth[0]),
            fg::isotropicSigmas(6, 0.05));
    fuzz.program = comp::compileGraph(graph, fuzz.values);
    return fuzz;
}

TEST(SchedulingFuzz, OutOfOrderMatchesInOrderResultsAndMacs)
{
    GateGuard guard;
    MetricsRegistry::setEnabled(true);
    auto &registry = MetricsRegistry::global();

    hw::AcceleratorConfig ooo = hw::AcceleratorConfig::minimal(true);
    hw::AcceleratorConfig in_order =
        hw::AcceleratorConfig::minimal(true);
    in_order.outOfOrder = false;

    for (unsigned seed = 1; seed <= 8; ++seed) {
        const FuzzCase fuzz = makeFuzzCase(seed);
        const std::vector<hw::WorkItem> work = {
            {&fuzz.program, &fuzz.values}};

        registry.reset();
        mat::MacScope ooo_macs;
        const hw::SimResult a = hw::simulate(work, ooo);
        const std::uint64_t ooo_mac_count = ooo_macs.elapsed();
        // The simulator reported this frame's makespan and busy
        // cycles into the registry as it ran (when compiled in).
        if constexpr (runtime::kMetricsCompiled) {
            EXPECT_EQ(registry.counter("hw.cycles").value(), a.cycles)
                << "seed " << seed;
            std::uint64_t busy_counters = 0;
            std::uint64_t busy_result = 0;
            for (std::size_t k = 0; k < hw::kUnitKindCount; ++k) {
                const std::string name =
                    std::string("hw.busy_cycles.") +
                    hw::unitName(static_cast<hw::UnitKind>(k));
                busy_counters += registry.counter(name).value();
                busy_result += a.unitBusyCycles[k];
            }
            EXPECT_EQ(busy_counters, busy_result) << "seed " << seed;
        }

        mat::MacScope io_macs;
        const hw::SimResult b = hw::simulate(work, in_order);
        const std::uint64_t io_mac_count = io_macs.elapsed();

        // Scheduling policy must not change what is computed: same
        // kernels, same MAC count, bit-identical deltas.
        EXPECT_EQ(ooo_mac_count, io_mac_count) << "seed " << seed;
        EXPECT_GT(ooo_mac_count, 0u) << "seed " << seed;
        ASSERT_EQ(a.deltas.size(), b.deltas.size());
        for (std::size_t w = 0; w < a.deltas.size(); ++w) {
            ASSERT_EQ(a.deltas[w].size(), b.deltas[w].size());
            for (const auto &[key, delta] : a.deltas[w]) {
                const auto it = b.deltas[w].find(key);
                ASSERT_NE(it, b.deltas[w].end());
                EXPECT_EQ(mat::maxDifference(delta, it->second), 0.0)
                    << "seed " << seed << " key " << key;
            }
        }
        // In-order must never beat the out-of-order schedule.
        EXPECT_LE(a.cycles, b.cycles) << "seed " << seed;
    }
}

} // namespace
