// The pass-based compiler pipeline: PassManager parsing and
// verification, bit-identical deltas of the optimizing passes on the
// four benchmark applications, Engine pass diagnostics, encoding of
// the fused opcodes, and a golden instruction-count regression per
// application.
//
// Regenerate the checked-in instruction counts after an intentional
// compiler change with:
//   ORIANNA_REGEN_GOLDEN=1 ./test_passes

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "compiler/codegen.hpp"
#include "compiler/encoding.hpp"
#include "compiler/executor.hpp"
#include "compiler/pass_manager.hpp"
#include "compiler/passes/passes.hpp"
#include "fg/factors.hpp"
#include "runtime/engine.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using comp::IsaOp;
using comp::PassManager;
using comp::PassStats;
using comp::Program;
using fg::FactorGraph;
using fg::Values;
using lie::Pose;
using mat::Vector;

/** Seed of the latency benches (bench/bench_common.hpp). */
constexpr unsigned kBenchSeed = 5;

const char *kGoldenPath =
    ORIANNA_GOLDEN_DIR "/instruction_counts.txt";

/** All four benchmark applications, compiled once per process. */
const std::vector<apps::BenchmarkApp> &
compiledApps()
{
    static std::vector<apps::BenchmarkApp> apps_list = [] {
        std::vector<apps::BenchmarkApp> out;
        for (apps::AppKind kind : apps::allApps()) {
            out.push_back(apps::buildApp(kind, kBenchSeed));
            out.back().app.compile();
        }
        return out;
    }();
    return apps_list;
}

void
expectBitIdenticalDeltas(const Program &a, const Program &b,
                         const Values &values)
{
    comp::Executor exec_a(a);
    comp::Executor exec_b(b);
    const auto da = exec_a.run(values);
    const auto db = exec_b.run(values);
    ASSERT_EQ(da.size(), db.size());
    for (const auto &[key, delta] : da) {
        const auto it = db.find(key);
        ASSERT_NE(it, db.end()) << "missing delta for key " << key;
        ASSERT_EQ(delta.size(), it->second.size());
        for (std::size_t i = 0; i < delta.size(); ++i) {
            const double x = delta[i];
            const double y = it->second[i];
            std::uint64_t bx = 0, by = 0;
            std::memcpy(&bx, &x, sizeof x);
            std::memcpy(&by, &y, sizeof y);
            EXPECT_EQ(bx, by)
                << "key " << key << " component " << i;
        }
    }
}

/** A small pose chain for the unit-level pipeline tests. */
FactorGraph
chainGraph(std::size_t n, Values &values, std::mt19937 &rng)
{
    FactorGraph graph;
    values = Values();
    Pose current = Pose::identity(3);
    for (std::size_t i = 0; i < n; ++i) {
        values.insert(i, current.retract(randomVector(6, rng, 0.05)));
        Pose step = randomPose(3, rng, 0.2, 1.0);
        if (i + 1 < n)
            graph.emplace<fg::BetweenFactor>(
                i, i + 1, step, fg::isotropicSigmas(6, 0.1));
        current = current.oplus(step);
    }
    graph.emplace<fg::PriorFactor>(0u, Pose::identity(3),
                                   fg::isotropicSigmas(6, 0.01));
    return graph;
}

// --- The paper-facing acceptance criterion ---------------------------

TEST(Passes, DefaultPipelineKeepsDeltasBitIdenticalOnAllApps)
{
    // The optimized stream (dedup,dce,cse,fuse) must produce
    // bit-identical Gauss-Newton deltas to the pre-refactor stream
    // (dedup,dce) on every algorithm of every application.
    for (const apps::BenchmarkApp &bench : compiledApps()) {
        const core::Application &app = bench.app;
        for (std::size_t a = 0; a < app.size(); ++a) {
            const core::Algorithm &algo = app.algorithm(a);
            SCOPED_TRACE(app.name() + "/" + algo.name);
            expectBitIdenticalDeltas(algo.referenceProgram,
                                     algo.program, algo.values);
        }
    }
}

TEST(Passes, CseAndFusionShrinkMostApplications)
{
    std::size_t apps_reduced = 0;
    std::size_t apps_with_fused_ops = 0;
    for (const apps::BenchmarkApp &bench : compiledApps()) {
        std::size_t reference = 0, optimized = 0, fused = 0;
        for (std::size_t a = 0; a < bench.app.size(); ++a) {
            const core::Algorithm &algo = bench.app.algorithm(a);
            reference += algo.referenceProgram.instructions.size();
            optimized += algo.program.instructions.size();
            const auto histogram = algo.program.opHistogram();
            fused +=
                histogram[static_cast<std::size_t>(IsaOp::GSCALE)] +
                histogram[static_cast<std::size_t>(IsaOp::MVSUB)];
        }
        if (optimized < reference)
            ++apps_reduced;
        if (fused > 0)
            ++apps_with_fused_ops;
    }
    EXPECT_GE(apps_reduced, 2u);
    EXPECT_GE(apps_with_fused_ops, 2u);
}

TEST(Passes, PipelineRecordsPerPassStats)
{
    for (const apps::BenchmarkApp &bench : compiledApps()) {
        for (std::size_t a = 0; a < bench.app.size(); ++a) {
            const core::Algorithm &algo = bench.app.algorithm(a);
            ASSERT_EQ(algo.passStats.size(), 4u);
            EXPECT_EQ(algo.passStats[0].pass, "dedup");
            EXPECT_EQ(algo.passStats[1].pass, "dce");
            EXPECT_EQ(algo.passStats[2].pass, "cse");
            EXPECT_EQ(algo.passStats[3].pass, "fuse");
            for (std::size_t p = 0; p < algo.passStats.size(); ++p) {
                const PassStats &stat = algo.passStats[p];
                EXPECT_GE(stat.before, stat.after);
                if (p > 0) {
                    EXPECT_EQ(stat.before,
                              algo.passStats[p - 1].after);
                }
            }
        }
    }
}

// --- Golden instruction-count regression -----------------------------

TEST(Passes, InstructionCountsMatchCheckedInGolden)
{
    std::ostringstream digest;
    digest << "seed " << kBenchSeed << " pipeline "
           << PassManager::defaultPipeline().spec() << "\n";
    for (const apps::BenchmarkApp &bench : compiledApps()) {
        for (std::size_t a = 0; a < bench.app.size(); ++a) {
            const core::Algorithm &algo = bench.app.algorithm(a);
            digest << bench.app.name() << " " << algo.name
                   << " reference "
                   << algo.referenceProgram.instructions.size()
                   << " optimized "
                   << algo.program.instructions.size() << "\n";
        }
    }

    if (std::getenv("ORIANNA_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        out << digest.str();
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        GTEST_SKIP() << "regenerated " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in.good())
        << "missing golden file " << kGoldenPath
        << " (regenerate with ORIANNA_REGEN_GOLDEN=1)";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(digest.str(), golden.str())
        << "per-app instruction counts moved; if intentional, "
           "regenerate with ORIANNA_REGEN_GOLDEN=1 ./test_passes";
}

// --- PassManager parsing and pipeline construction -------------------

TEST(Passes, ParsesSpecsAndRejectsUnknownNames)
{
    EXPECT_EQ(PassManager::parse("default").spec(),
              "dedup,dce,cse,fuse");
    EXPECT_EQ(PassManager::defaultPipeline().spec(),
              "dedup,dce,cse,fuse");
    EXPECT_EQ(PassManager::parse("none").size(), 0u);
    EXPECT_EQ(PassManager::parse("").size(), 0u);
    EXPECT_EQ(PassManager::parse(" dedup , cse ").spec(), "dedup,cse");
    EXPECT_THROW(PassManager::parse("bogus"), std::invalid_argument);
    EXPECT_THROW(PassManager::parse("dedup,bogus,dce"),
                 std::invalid_argument);

    const auto listing = PassManager::availablePasses();
    ASSERT_EQ(listing.size(), 4u);
    for (const auto &[name, description] : listing) {
        EXPECT_FALSE(name.empty());
        EXPECT_FALSE(description.empty());
    }
}

// --- The per-pass verification hook ----------------------------------

TEST(Passes, VerificationAcceptsTheSoundPipeline)
{
    std::mt19937 rng(7);
    Values values;
    const FactorGraph graph = chainGraph(6, values, rng);
    Program program = comp::compileGraph(graph, values);
    const Program original = program;

    const PassManager pipeline = PassManager::defaultPipeline();
    PassManager::RunOptions options;
    options.probe = &values;
    options.verify = true;
    const std::vector<PassStats> stats =
        pipeline.run(program, options);

    ASSERT_EQ(stats.size(), 4u);
    for (const PassStats &stat : stats)
        EXPECT_TRUE(stat.verified) << stat.pass;
    expectBitIdenticalDeltas(original, program, values);
}

/** A deliberately unsound pass: perturbs the first LOADC payload. */
class BrokenPass final : public comp::Pass
{
  public:
    const char *name() const override { return "broken"; }
    const char *description() const override
    {
        return "changes program semantics (test only)";
    }
    std::size_t run(Program &program) const override
    {
        for (comp::Instruction &inst : program.instructions) {
            if (inst.op == IsaOp::LOADC && inst.constVec.size() > 0) {
                inst.constVec[0] = inst.constVec[0] + 1.0;
                return 1;
            }
        }
        return 0;
    }
};

TEST(Passes, VerificationRejectsABrokenPass)
{
    std::mt19937 rng(8);
    Values values;
    const FactorGraph graph = chainGraph(5, values, rng);
    Program program = comp::compileGraph(graph, values);

    PassManager pipeline;
    pipeline.add(std::make_unique<BrokenPass>());
    PassManager::RunOptions options;
    options.probe = &values;
    options.verify = true;
    EXPECT_THROW(pipeline.run(program, options), std::runtime_error);

    // Without verification the same pass goes through unchallenged —
    // the hook, not the pipeline plumbing, is what catches it.
    Program unchecked = comp::compileGraph(graph, values);
    EXPECT_NO_THROW(pipeline.run(unchecked));
}

// --- Engine diagnostics ----------------------------------------------

TEST(Passes, EngineReportsPerCompilePassStats)
{
    std::mt19937 rng(9);
    Values values;
    const FactorGraph graph = chainGraph(6, values, rng);

    runtime::EngineOptions options;
    options.verifyPasses = true;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    engine.program(graph, values, 0, "chain");

    const auto log = engine.compileLog();
    ASSERT_EQ(log.size(), 1u);
    const runtime::Engine::CompileRecord &record = log[0];
    EXPECT_EQ(record.name, "chain");
    ASSERT_EQ(record.passes.size(), 4u);
    for (const PassStats &stat : record.passes)
        EXPECT_TRUE(stat.verified) << stat.pass;

    const std::string summary = record.passSummary();
    EXPECT_NE(summary.find("chain: "), std::string::npos);
    EXPECT_NE(summary.find("dedup -"), std::string::npos);
    EXPECT_NE(summary.find("fuse -"), std::string::npos);
    EXPECT_NE(summary.find(" verified"), std::string::npos);

    // The pass counters land in the process-wide metrics registry.
    const std::string json = runtime::Engine::metricsJson();
    EXPECT_NE(json.find("pass.dedup.runs"), std::string::npos);
    EXPECT_NE(json.find("pass.cse.rewrites"), std::string::npos);
}

TEST(Passes, EngineHonoursTheConfiguredPipeline)
{
    std::mt19937 rng(10);
    Values values;
    const FactorGraph graph = chainGraph(6, values, rng);

    runtime::EngineOptions cleanup_only;
    cleanup_only.passes = "dedup,dce";
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           cleanup_only);
    const auto program = engine.program(graph, values);
    ASSERT_EQ(engine.compileLog().size(), 1u);
    EXPECT_EQ(engine.compileLog()[0].passes.size(), 2u);
    const auto histogram = program->opHistogram();
    EXPECT_EQ(histogram[static_cast<std::size_t>(IsaOp::GSCALE)], 0u);
    EXPECT_EQ(histogram[static_cast<std::size_t>(IsaOp::MVSUB)], 0u);

    runtime::EngineOptions bad;
    bad.passes = "dedup,bogus";
    EXPECT_THROW(
        runtime::Engine(hw::AcceleratorConfig::minimal(true), bad),
        std::invalid_argument);
}

// --- Fused opcodes through the binary encoding -----------------------

TEST(Passes, EncodingRoundTripsFusedOpcodes)
{
    std::mt19937 rng(11);
    Values values;
    const FactorGraph graph = chainGraph(8, values, rng);
    Program program = comp::compileGraph(graph, values);
    PassManager::defaultPipeline().run(program);

    const auto histogram = program.opHistogram();
    const std::size_t fused =
        histogram[static_cast<std::size_t>(IsaOp::GSCALE)] +
        histogram[static_cast<std::size_t>(IsaOp::MVSUB)];
    ASSERT_GT(fused, 0u)
        << "expected the chain graph to exercise fusion";

    const Program decoded =
        comp::decodeProgram(comp::encodeProgram(program));
    ASSERT_EQ(decoded.instructions.size(),
              program.instructions.size());
    EXPECT_EQ(decoded.opHistogram(), histogram);
    expectBitIdenticalDeltas(program, decoded, values);
}

} // namespace
