// Tests for the accelerator simulator: functional equivalence with the
// reference executor, in-order vs out-of-order scheduling properties,
// resource accounting and the energy model.

#include <algorithm>
#include <fstream>
#include <map>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "fg/factors.hpp"
#include "hw/accelerator.hpp"
#include "hw/trace.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using orianna::test::randomVector;
using comp::Program;
using fg::FactorGraph;
using fg::Values;
using hw::AcceleratorConfig;
using hw::SimResult;
using hw::UnitKind;
using lie::Pose;
using mat::Vector;

/** Small 3-D pose chain fixture. */
struct Fixture
{
    FactorGraph graph;
    Values values;
    Program program;
};

Fixture
makeFixture(std::size_t n, unsigned seed)
{
    std::mt19937 rng(seed);
    Fixture f;
    Pose current = Pose::identity(3);
    std::vector<Pose> truth;
    for (std::size_t i = 0; i < n; ++i) {
        truth.push_back(current);
        f.values.insert(i,
                        current.retract(randomVector(6, rng, 0.05)));
        Pose step = randomPose(3, rng, 0.2, 1.0);
        if (i + 1 < n)
            f.graph.emplace<fg::BetweenFactor>(
                i, i + 1, step, fg::isotropicSigmas(6, 0.1));
        current = current.oplus(step);
    }
    f.graph.emplace<fg::PriorFactor>(0u, truth[0],
                                     fg::isotropicSigmas(6, 0.01));
    f.program = comp::compileGraph(f.graph, f.values);
    return f;
}

TEST(Accelerator, FunctionalMatchesReferenceExecutor)
{
    Fixture f = makeFixture(5, 41);
    comp::Executor reference(f.program);
    const auto expected = reference.run(f.values);

    for (bool ooo : {false, true}) {
        SimResult sim = hw::simulate({{&f.program, &f.values}},
                                     AcceleratorConfig::minimal(ooo));
        ASSERT_EQ(sim.deltas.size(), 1u);
        for (const auto &[key, delta] : expected)
            EXPECT_LT(mat::maxDifference(sim.deltas[0].at(key), delta),
                      1e-12)
                << "ooo=" << ooo << " key=" << key;
    }
}

TEST(Accelerator, OutOfOrderIsFaster)
{
    Fixture f = makeFixture(8, 42);
    SimResult io = hw::simulate({{&f.program, &f.values}},
                                AcceleratorConfig::minimal(false));
    SimResult ooo = hw::simulate({{&f.program, &f.values}},
                                 AcceleratorConfig::minimal(true));
    EXPECT_LT(ooo.cycles, io.cycles);
    // Same work, same compute energy.
    EXPECT_NEAR(ooo.dynamicEnergyJ, io.dynamicEnergyJ, 1e-15);
    // The in-order controller round-trips operands through DRAM and
    // burns idle static energy over the longer makespan.
    EXPECT_GT(io.memoryEnergyJ, ooo.memoryEnergyJ);
    EXPECT_GT(io.staticEnergyJ, ooo.staticEnergyJ);
    EXPECT_GT(io.totalEnergyJ(), ooo.totalEnergyJ());
}

TEST(Accelerator, MoreUnitsNeverSlower)
{
    Fixture f = makeFixture(6, 43);
    AcceleratorConfig small = AcceleratorConfig::minimal(true);
    AcceleratorConfig big = small;
    for (auto &count : big.units)
        count = 4;
    SimResult s = hw::simulate({{&f.program, &f.values}}, small);
    SimResult b = hw::simulate({{&f.program, &f.values}}, big);
    EXPECT_LE(b.cycles, s.cycles);
}

TEST(Accelerator, CoarseGrainedOooOverlapsAlgorithms)
{
    // Two independent algorithms: running them on one OoO accelerator
    // must take less than the sum of their standalone makespans
    // (coarse-grained out-of-order execution, Sec. 6.3).
    Fixture a = makeFixture(6, 44);
    Fixture b = makeFixture(6, 45);
    comp::CompileOptions options;
    options.algorithmTag = 1;
    Program program_b = comp::compileGraph(b.graph, b.values, options);

    AcceleratorConfig config = AcceleratorConfig::minimal(true);
    SimResult only_a = hw::simulate({{&a.program, &a.values}}, config);
    SimResult only_b = hw::simulate({{&program_b, &b.values}}, config);
    SimResult both = hw::simulate(
        {{&a.program, &a.values}, {&program_b, &b.values}}, config);

    EXPECT_LT(both.cycles, only_a.cycles + only_b.cycles);
    EXPECT_EQ(both.algorithmFinishCycle.size(), 2u);
    EXPECT_GE(both.algorithmFinishCycle.at(0),
              std::min(only_a.cycles, only_b.cycles) / 2);
}

TEST(Accelerator, PhaseBreakdownCoversAllBusyCycles)
{
    Fixture f = makeFixture(6, 46);
    SimResult sim = hw::simulate({{&f.program, &f.values}},
                                 AcceleratorConfig::minimal(true));
    std::uint64_t by_phase = sim.phaseBusyCycles[0] +
                             sim.phaseBusyCycles[1] +
                             sim.phaseBusyCycles[2];
    std::uint64_t by_unit = 0;
    for (std::uint64_t c : sim.unitBusyCycles)
        by_unit += c;
    EXPECT_EQ(by_phase, by_unit);
    EXPECT_GT(sim.phaseBusyCycles[0], 0u); // Construction.
    EXPECT_GT(sim.phaseBusyCycles[1], 0u); // Decomposition.
    EXPECT_GT(sim.phaseBusyCycles[2], 0u); // Back substitution.
}

TEST(Accelerator, IteratedStepsConverge)
{
    Fixture f = makeFixture(5, 47);
    auto out = hw::simulateIterated(f.program, f.values, 6,
                                    AcceleratorConfig::minimal(true));
    EXPECT_LT(f.graph.totalError(out.values), 1e-9);
    EXPECT_GT(out.total.cycles, 0u);
}

TEST(Accelerator, ZeroUnitConfigRejected)
{
    Fixture f = makeFixture(3, 48);
    AcceleratorConfig config = AcceleratorConfig::minimal(true);
    config.count(UnitKind::Qr) = 0;
    EXPECT_THROW(hw::simulate({{&f.program, &f.values}}, config),
                 std::invalid_argument);
}

TEST(CostModel, ResourcesScaleWithUnits)
{
    AcceleratorConfig one = AcceleratorConfig::minimal(true);
    AcceleratorConfig two = one;
    for (auto &count : two.units)
        count = 2;
    const hw::Resources r1 = one.resources();
    const hw::Resources r2 = two.resources();
    EXPECT_GT(r2.lut, r1.lut);
    EXPECT_GT(r2.dsp, r1.dsp);
    // Controller overhead is fixed, so doubling units less than
    // doubles the totals.
    EXPECT_LT(r2.lut, 2 * r1.lut);
}

TEST(CostModel, LatencyGrowsWithShape)
{
    comp::Instruction small;
    small.op = comp::IsaOp::QR;
    small.rows = 6;
    small.cols = 7;
    small.depth = 6;
    comp::Instruction large = small;
    large.rows = 60;
    large.cols = 61;
    large.depth = 60;
    EXPECT_LT(hw::CostModel::latency(small),
              hw::CostModel::latency(large));
    EXPECT_LT(hw::instructionMacs(small), hw::instructionMacs(large));
}

TEST(Accelerator, TraceRecordsSchedule)
{
    Fixture f = makeFixture(4, 49);
    AcceleratorConfig config = AcceleratorConfig::minimal(true);
    config.recordTrace = true;
    config.count(UnitKind::MatMul) = 2;
    SimResult sim = hw::simulate({{&f.program, &f.values}}, config);

    ASSERT_EQ(sim.trace.size(), f.program.instructions.size());
    for (const auto &event : sim.trace) {
        EXPECT_LT(event.startCycle, event.endCycle);
        EXPECT_LE(event.endCycle, sim.cycles);
        EXPECT_LT(event.instance, config.count(event.unit));
    }
    // Events on the same unit instance never overlap.
    std::map<std::pair<int, unsigned>,
             std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        lanes;
    for (const auto &event : sim.trace)
        lanes[{static_cast<int>(event.unit), event.instance}]
            .emplace_back(event.startCycle, event.endCycle);
    for (auto &[lane, spans] : lanes) {
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            EXPECT_LE(spans[i - 1].second, spans[i].first);
    }
    // Off by default.
    SimResult quiet = hw::simulate({{&f.program, &f.values}},
                                   AcceleratorConfig::minimal(true));
    EXPECT_TRUE(quiet.trace.empty());
}

TEST(Accelerator, ChromeTraceWrites)
{
    Fixture f = makeFixture(3, 50);
    AcceleratorConfig config = AcceleratorConfig::minimal(true);
    config.recordTrace = true;
    SimResult sim = hw::simulate({{&f.program, &f.values}}, config);
    const std::string path = ::testing::TempDir() + "orianna_trace.json";
    hw::writeChromeTrace(path, sim.trace);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("process_name"), std::string::npos);
    EXPECT_NE(all.find("GATHER"), std::string::npos);
    EXPECT_THROW(hw::writeChromeTrace("/nonexistent/dir/x.json",
                                      sim.trace),
                 std::runtime_error);
}

TEST(CostModel, EveryOpcodeHasAUnit)
{
    for (int op = 0; op <= static_cast<int>(comp::IsaOp::STORE); ++op) {
        comp::Instruction inst;
        inst.op = static_cast<comp::IsaOp>(op);
        inst.rows = 3;
        inst.cols = 3;
        inst.depth = 3;
        EXPECT_GE(hw::CostModel::latency(inst), 1u)
            << comp::isaOpName(inst.op);
        EXPECT_GE(hw::CostModel::dynamicEnergyNj(inst), 0.0);
    }
}

} // namespace
