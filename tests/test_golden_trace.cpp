// Golden-trace regression test: the mobile_robot schedule on its
// generated fig.13-style accelerator is fully deterministic (the
// cycle-level simulator has no randomness; schedules depend only on
// the program structure), so a structural digest of the schedule —
// event count, makespan, per-unit busy cycles — is byte-stable across
// runs and thread counts. Any change in the compiler, scheduler or
// cost model that moves the paper-facing schedule shows up here as a
// digest diff instead of a silent drift.
//
// Regenerate the checked-in digest after an intentional change with:
//   ORIANNA_REGEN_GOLDEN=1 ./test_golden_trace

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark_apps.hpp"
#include "hwgen/generator.hpp"
#include "matrix/simd.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/server_pool.hpp"

namespace {

using namespace orianna;

/** Seed and budget of the latency benches (bench/bench_common.hpp). */
constexpr unsigned kBenchSeed = 5;

hw::Resources
zc706Budget()
{
    return {131000, 262000, 327, 540};
}

const char *kGoldenPath =
    ORIANNA_GOLDEN_DIR "/mobile_robot_fig13.digest";

/**
 * Structural digest of one simulated frame's schedule: every number a
 * schedule regression would move, in a fixed text layout.
 */
std::string
scheduleDigest(const std::vector<hw::WorkItem> &work,
               const hw::AcceleratorConfig &config)
{
    hw::AcceleratorConfig traced = config;
    traced.recordTrace = true;
    runtime::ExecutionContext context(work);
    const hw::SimResult frame = context.run(traced);

    std::ostringstream out;
    out << "app mobile_robot seed " << kBenchSeed << "\n";
    out << "events " << frame.trace.size() << "\n";
    out << "makespan_cycles " << frame.cycles << "\n";
    for (std::size_t k = 0; k < hw::kUnitKindCount; ++k)
        out << "busy_cycles "
            << hw::unitName(static_cast<hw::UnitKind>(k)) << " "
            << frame.unitBusyCycles[k] << "\n";
    for (std::size_t p = 0; p < frame.phaseBusyCycles.size(); ++p)
        out << "phase_busy_cycles " << p << " "
            << frame.phaseBusyCycles[p] << "\n";
    // The last event's end pins the tail of the schedule.
    if (!frame.trace.empty()) {
        const hw::TraceEvent &last = frame.trace.back();
        out << "last_event " << last.name << " "
            << last.startCycle << " " << last.endCycle << "\n";
    }
    return out.str();
}

struct GoldenSetup
{
    apps::BenchmarkApp bench;
    std::vector<hw::WorkItem> work;
    hw::AcceleratorConfig config;
};

GoldenSetup
makeSetup()
{
    GoldenSetup setup{
        apps::buildApp(apps::AppKind::MobileRobot, kBenchSeed),
        {},
        {}};
    setup.bench.app.compile();
    setup.work = setup.bench.app.frameWork();
    setup.config = hwgen::generate(setup.work, zc706Budget(),
                                   hwgen::Objective::AvgLatency, true)
                       .config;
    return setup;
}

TEST(GoldenTrace, MobileRobotScheduleMatchesCheckedInDigest)
{
    const GoldenSetup setup = makeSetup();
    const std::string digest = scheduleDigest(setup.work, setup.config);

    if (std::getenv("ORIANNA_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        out << digest;
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        GTEST_SKIP() << "regenerated " << kGoldenPath;
    }

    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in.good())
        << "missing golden file " << kGoldenPath
        << " (regenerate with ORIANNA_REGEN_GOLDEN=1)";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(digest, golden.str())
        << "the mobile_robot schedule moved; if intentional, "
           "regenerate with ORIANNA_REGEN_GOLDEN=1 ./test_golden_trace";
}

TEST(GoldenTrace, ScalarKernelTierReproducesDigestByteIdentically)
{
    // The bit-exact contract of ORIANNA_SIMD=scalar (DESIGN.md §10):
    // with the scalar kernel table pinned, the fig.13 digest matches
    // the checked-in golden byte for byte — no regeneration, no
    // tolerance. (The digest is structural, so faster tiers also
    // reproduce it; this test is the guarantee for the reference
    // tier specifically.)
    const mat::kernels::ScopedKernelTier pin(
        mat::kernels::SimdTier::Scalar);
    ASSERT_TRUE(pin.ok());

    if (std::getenv("ORIANNA_REGEN_GOLDEN") != nullptr)
        GTEST_SKIP() << "regenerating; covered by the test above";

    const GoldenSetup setup = makeSetup();
    const std::string digest = scheduleDigest(setup.work, setup.config);
    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(digest, golden.str());
}

TEST(GoldenTrace, DigestIsStableAcrossRunsAndThreadCounts)
{
    const GoldenSetup setup = makeSetup();
    const std::string reference =
        scheduleDigest(setup.work, setup.config);

    // Re-running in a fresh context must reproduce every byte.
    EXPECT_EQ(scheduleDigest(setup.work, setup.config), reference);

    // Concurrency must not leak into the schedule: digests computed
    // on pool workers (any thread count) equal the sequential one.
    for (unsigned threads : {2u, 4u}) {
        runtime::ServerPool pool(threads);
        std::vector<std::string> digests(threads);
        pool.parallelFor(threads, [&](std::size_t i) {
            digests[i] = scheduleDigest(setup.work, setup.config);
        });
        for (const std::string &digest : digests)
            EXPECT_EQ(digest, reference)
                << "thread count " << threads;
    }
}

} // namespace
