// Tests for the sensor front-end substrates: IMU preintegration and
// 2-D ICP scan matching.

#include <random>

#include <gtest/gtest.h>

#include "fg/factors.hpp"
#include "fg/optimizer.hpp"
#include "sensors/imu.hpp"
#include "sensors/scan_matching.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::randomPose;
using lie::Pose;
using mat::Vector;
using sensors::ImuPreintegrator;
using sensors::ImuSample;
using sensors::Scan;

// --- IMU preintegration -----------------------------------------------------

class Preintegration : public ::testing::TestWithParam<int>
{};

TEST_P(Preintegration, NoiselessSamplesReproduceMotionExactly)
{
    std::mt19937 rng(90 + GetParam());
    for (std::size_t dim : {2u, 3u}) {
        const Pose a = randomPose(dim, rng, 0.5, 2.0);
        const Pose b = randomPose(dim, rng, 0.5, 2.0);
        const auto samples = sensors::synthesizeImuSegment(
            a, b, 40, 0.2, rng, 0.0, 0.0);
        ImuPreintegrator integrator(dim);
        for (const ImuSample &sample : samples)
            integrator.add(sample);
        EXPECT_LT(lie::poseDistance(integrator.delta(), b.ominus(a)),
                  1e-9)
            << "dim " << dim;
        EXPECT_NEAR(integrator.elapsed(), 0.2, 1e-12);
        EXPECT_EQ(integrator.count(), 40u);
    }
}

TEST_P(Preintegration, NoisySamplesStayNearMotion)
{
    std::mt19937 rng(120 + GetParam());
    const Pose a = randomPose(3, rng, 0.3, 1.0);
    const Pose b = randomPose(3, rng, 0.3, 1.0);
    const auto samples = sensors::synthesizeImuSegment(
        a, b, 50, 0.25, rng, 0.02, 0.05);
    ImuPreintegrator integrator(3);
    for (const ImuSample &sample : samples)
        integrator.add(sample);
    const double err =
        lie::poseDistance(integrator.delta(), b.ominus(a));
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Preintegration, ::testing::Range(0, 6));

TEST(Preintegration, ResetAndValidation)
{
    ImuPreintegrator integrator(2);
    ImuSample sample;
    sample.gyro = Vector{0.1};
    sample.velocity = Vector{1.0, 0.0};
    sample.dt = 0.01;
    integrator.add(sample);
    EXPECT_EQ(integrator.count(), 1u);
    integrator.reset();
    EXPECT_EQ(integrator.count(), 0u);
    EXPECT_LT(lie::poseDistance(integrator.delta(), Pose::identity(2)),
              1e-15);

    sample.dt = -1.0;
    EXPECT_THROW(integrator.add(sample), std::invalid_argument);
    sample.dt = 0.01;
    sample.gyro = Vector{0.1, 0.2, 0.3};
    EXPECT_THROW(integrator.add(sample), std::invalid_argument);
    EXPECT_THROW(ImuPreintegrator(5), std::invalid_argument);
    std::mt19937 rng(1);
    EXPECT_THROW(sensors::synthesizeImuSegment(Pose::identity(2),
                                               Pose::identity(2), 0,
                                               0.1, rng, 0, 0),
                 std::invalid_argument);
}

TEST(Preintegration, FeedsImuFactor)
{
    // End to end: preintegrated measurements drive the localization
    // factor graph to the true trajectory.
    std::mt19937 rng(91);
    std::vector<Pose> truth;
    Pose current = Pose::identity(3);
    for (int i = 0; i < 5; ++i) {
        truth.push_back(current);
        current = current.oplus(Pose(Vector{0.05, 0.0, 0.1},
                                     Vector{0.4, 0.0, 0.05}));
    }
    fg::FactorGraph graph;
    fg::Values init;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        init.insert(i, orianna::test::randomPose(3, rng, 0.02, 0.05)
                           .oplus(truth[i]));
        if (i + 1 < truth.size()) {
            ImuPreintegrator integrator(3);
            for (const auto &sample : sensors::synthesizeImuSegment(
                     truth[i], truth[i + 1], 30, 0.1, rng, 0.001,
                     0.003))
                integrator.add(sample);
            graph.emplace<fg::IMUFactor>(i, i + 1, integrator.delta(),
                                         fg::isotropicSigmas(6, 0.01));
        }
    }
    graph.emplace<fg::PriorFactor>(0u, truth[0],
                                   fg::isotropicSigmas(6, 0.001));
    auto result = fg::optimize(graph, init);
    for (std::size_t i = 0; i < truth.size(); ++i)
        EXPECT_LT((result.values.pose(i).t() - truth[i].t()).norm(),
                  0.05)
            << "pose " << i;
}

// --- ICP scan matching ------------------------------------------------------

std::vector<Vector>
wallMap()
{
    // Irregular landmark field: repetitive structure (e.g. an evenly
    // spaced wall) aliases point-to-point ICP, so use a scattered map
    // like natural LiDAR returns.
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> x(-3.0, 10.0);
    std::uniform_real_distribution<double> y(-4.0, 4.0);
    std::vector<Vector> landmarks;
    for (int i = 0; i < 60; ++i)
        landmarks.push_back(Vector{x(rng), y(rng)});
    return landmarks;
}

TEST(Icp, RecoversKnownMotion)
{
    std::mt19937 rng(92);
    const auto landmarks = wallMap();
    const Pose a(Vector{0.1}, Vector{1.0, 0.2});
    const Pose b(Vector{0.22}, Vector{1.5, 0.35});

    const Scan scan_a =
        sensors::renderScan(a, landmarks, 12.0, 0.0, rng);
    const Scan scan_b =
        sensors::renderScan(b, landmarks, 12.0, 0.0, rng);
    const auto result =
        sensors::icp2d(scan_a, scan_b, Pose::identity(2));

    EXPECT_TRUE(result.converged);
    EXPECT_LT(lie::poseDistance(result.relative, b.ominus(a)), 1e-6);
    EXPECT_LT(result.meanResidual, 1e-6);
}

TEST(Icp, NoisyScansStayClose)
{
    std::mt19937 rng(93);
    const auto landmarks = wallMap();
    const Pose a(Vector{0.0}, Vector{0.5, 0.0});
    const Pose b(Vector{0.08}, Vector{0.9, 0.1});
    const Scan scan_a =
        sensors::renderScan(a, landmarks, 12.0, 0.01, rng);
    const Scan scan_b =
        sensors::renderScan(b, landmarks, 12.0, 0.01, rng);
    const auto result =
        sensors::icp2d(scan_a, scan_b, Pose::identity(2));
    EXPECT_LT(lie::poseDistance(result.relative, b.ominus(a)), 0.02);
}

TEST(Icp, InitialGuessExtendsBasin)
{
    // A large motion fails from identity but succeeds from an
    // odometry-grade initial guess.
    std::mt19937 rng(94);
    const auto landmarks = wallMap();
    const Pose a(Vector{0.0}, Vector{0.5, 0.0});
    const Pose b(Vector{0.5}, Vector{3.5, 1.0});
    const Scan scan_a =
        sensors::renderScan(a, landmarks, 20.0, 0.0, rng);
    const Scan scan_b =
        sensors::renderScan(b, landmarks, 20.0, 0.0, rng);

    const Pose truth = b.ominus(a);
    const auto guessed = sensors::icp2d(
        scan_a, scan_b, truth.retract(Vector{0.05, 0.2, -0.1}));
    EXPECT_LT(lie::poseDistance(guessed.relative, truth), 1e-5);
}

TEST(Icp, RendersOnlyInRange)
{
    std::mt19937 rng(95);
    const auto landmarks = wallMap();
    const Pose pose(Vector{0.0}, Vector{0.0, 0.0});
    const Scan near = sensors::renderScan(pose, landmarks, 3.5, 0.0, rng);
    const Scan all = sensors::renderScan(pose, landmarks, 50.0, 0.0, rng);
    EXPECT_LT(near.points.size(), all.points.size());
    EXPECT_EQ(all.points.size(), landmarks.size());
}

TEST(Icp, EmptyScanRejected)
{
    Scan empty;
    Scan one;
    one.points.push_back(Vector{1.0, 1.0});
    EXPECT_THROW(sensors::icp2d(empty, one, Pose::identity(2)),
                 std::invalid_argument);
}

} // namespace
