// Tests for Values, the MO-DFG (forward/backward), and every factor
// in the library: analytic (backward propagation) Jacobians are
// validated against central finite differences.

#include <gtest/gtest.h>

#include "fg/factors.hpp"
#include "test_fg_common.hpp"

namespace {

using namespace orianna;
using orianna::test::expectJacobiansMatch;
using orianna::test::randomPose;
using orianna::test::randomVector;
using fg::CameraModel;
using fg::Dfg;
using fg::Key;
using fg::PoseExpr;
using fg::Values;
using lie::Pose;
using mat::Matrix;
using mat::maxDifference;
using mat::Vector;

// --- Values ---------------------------------------------------------------

TEST(Values, InsertAccessAndKinds)
{
    Values values;
    values.insert(1, Pose::identity(3));
    values.insert(2, Vector{1.0, 2.0});
    EXPECT_TRUE(values.exists(1));
    EXPECT_TRUE(values.isPose(1));
    EXPECT_FALSE(values.isPose(2));
    EXPECT_EQ(values.dof(1), 6u);
    EXPECT_EQ(values.dof(2), 2u);
    EXPECT_THROW(values.insert(1, Pose::identity(3)),
                 std::invalid_argument);
    EXPECT_THROW(values.pose(2), std::invalid_argument);
    EXPECT_THROW(values.vector(1), std::invalid_argument);
    EXPECT_THROW(values.pose(99), std::out_of_range);
}

TEST(Values, RetractDispatch)
{
    Values values;
    values.insert(1, Pose::identity(2));
    values.insert(2, Vector{1.0});
    values.retract(1, Vector{0.1, 1.0, 2.0});
    values.retract(2, Vector{0.5});
    EXPECT_NEAR(values.pose(1).phi()[0], 0.1, 1e-12);
    EXPECT_NEAR(values.pose(1).t()[0], 1.0, 1e-12);
    EXPECT_NEAR(values.vector(2)[0], 1.5, 1e-12);
}

TEST(Values, UpdateKindMismatchThrows)
{
    Values values;
    values.insert(1, Pose::identity(2));
    EXPECT_THROW(values.update(1, Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(values.update(7, Pose::identity(2)), std::out_of_range);
}

// --- DFG structure ----------------------------------------------------------

TEST(Dfg, BuilderTracksKeysInFirstUseOrder)
{
    Dfg dfg;
    PoseExpr b = dfg.inputPose(5);
    PoseExpr a = dfg.inputPose(2);
    dfg.addPoseOutput(dfg.ominus(a, b));
    const auto keys = dfg.variableKeys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], 5u);
    EXPECT_EQ(keys[1], 2u);
}

TEST(Dfg, RejectsRotationOutputs)
{
    Dfg dfg;
    PoseExpr a = dfg.inputPose(1);
    EXPECT_THROW(dfg.addOutput(a.rot), std::invalid_argument);
    EXPECT_THROW(dfg.constRot(Matrix::identity(4)),
                 std::invalid_argument);
}

TEST(Dfg, ForwardMatchesPoseAlgebra)
{
    std::mt19937 rng(1);
    for (std::size_t n : {2u, 3u}) {
        Pose a = randomPose(n, rng);
        Pose b = randomPose(n, rng);
        Values values;
        values.insert(1, a);
        values.insert(2, b);

        Dfg dfg;
        PoseExpr ae = dfg.inputPose(1);
        PoseExpr be = dfg.inputPose(2);
        dfg.addPoseOutput(dfg.oplus(ae, be));
        fg::DfgForward fwd = evalForward(dfg, values);

        const Pose expected = a.oplus(b);
        EXPECT_LT(maxDifference(fwd.error, expected.asVector()), 1e-9)
            << "n = " << n;
    }
}

TEST(Dfg, SdfNodeRequiresMap)
{
    Dfg dfg;
    fg::NodeId v = dfg.inputVec(1);
    EXPECT_THROW(dfg.sdf(v, nullptr), std::invalid_argument);
}

TEST(Dfg, ProjBehindCameraThrows)
{
    Dfg dfg;
    fg::NodeId v = dfg.inputVec(1);
    dfg.addOutput(dfg.proj(v, CameraModel{100, 100, 0, 0}));
    Values values;
    values.insert(1, Vector{0.0, 0.0, -1.0});
    EXPECT_THROW(evalForward(dfg, values), std::runtime_error);
}

// --- Factor Jacobians vs finite differences -------------------------------

class FactorJacobians : public ::testing::TestWithParam<int>
{
  protected:
    std::mt19937 rng_{static_cast<unsigned>(GetParam())};
};

TEST_P(FactorJacobians, Prior2d)
{
    Values values;
    values.insert(1, randomPose(2, rng_));
    fg::PriorFactor factor(1, randomPose(2, rng_),
                           fg::isotropicSigmas(3, 0.5));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Prior3d)
{
    Values values;
    values.insert(1, randomPose(3, rng_));
    fg::PriorFactor factor(1, randomPose(3, rng_),
                           fg::isotropicSigmas(6, 2.0));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Between2d)
{
    Values values;
    values.insert(1, randomPose(2, rng_));
    values.insert(2, randomPose(2, rng_));
    fg::BetweenFactor factor(1, 2, randomPose(2, rng_),
                             fg::isotropicSigmas(3, 1.0));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Between3d)
{
    Values values;
    values.insert(1, randomPose(3, rng_));
    values.insert(2, randomPose(3, rng_));
    fg::BetweenFactor factor(1, 2, randomPose(3, rng_),
                             fg::isotropicSigmas(6, 1.0));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Gps)
{
    Values values;
    values.insert(1, randomPose(3, rng_));
    fg::GPSFactor factor(1, randomVector(3, rng_, 5.0),
                         fg::isotropicSigmas(3, 0.3));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Camera)
{
    Values values;
    Pose pose = randomPose(3, rng_, 0.3, 1.0);
    values.insert(1, pose);
    // Put the landmark safely in front of the camera.
    Vector local{0.3, -0.2, 4.0};
    Vector world = pose.rotation() * local + pose.t();
    values.insert(2, world);
    fg::CameraFactor factor(1, 2, Vector{5.0, -3.0},
                            CameraModel{450.0, 450.0, 320.0, 240.0},
                            fg::isotropicSigmas(2, 1.0));
    expectJacobiansMatch(factor, values, 2e-4);
}

TEST_P(FactorJacobians, Smooth)
{
    Values values;
    values.insert(1, randomVector(6, rng_, 2.0));
    values.insert(2, randomVector(6, rng_, 2.0));
    fg::SmoothFactor factor(1, 2, 3, 0.1, fg::isotropicSigmas(6, 0.7));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, CollisionFreeActive)
{
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{0.0, 0.0}, 1.0);
    Values values;
    // Inside the eps margin: hinge active, gradient nonzero.
    values.insert(1, Vector{1.2, 0.3, 0.0, 0.0});
    fg::CollisionFreeFactor factor(1, map, 4, 2, 1.0, 0.5);
    expectJacobiansMatch(factor, values, 1e-5);
    EXPECT_GT(factor.error(values)[0], 0.0);
}

TEST_P(FactorJacobians, CollisionFreeInactive)
{
    auto map = std::make_shared<fg::SdfMap>();
    map->addObstacle(Vector{0.0, 0.0}, 1.0);
    Values values;
    values.insert(1, Vector{10.0, 10.0, 0.0, 0.0});
    fg::CollisionFreeFactor factor(1, map, 4, 2, 1.0, 0.5);
    EXPECT_EQ(factor.error(values)[0], 0.0);
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Kinematics)
{
    Values values;
    // Velocities straddle the limit so both hinges have active and
    // inactive rows.
    values.insert(1, Vector{0.0, 0.0, 2.5, -0.4});
    fg::KinematicsFactor factor(1, 4, 2, 2, 2.0, 1.0);
    Vector e = factor.error(values);
    EXPECT_NEAR(e[0], 0.5, 1e-12); // v0 = 2.5 over vmax = 2.0.
    EXPECT_EQ(e[1], 0.0);
    EXPECT_EQ(e[2], 0.0);
    EXPECT_EQ(e[3], 0.0);
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, Dynamics)
{
    Values values;
    values.insert(1, randomVector(3, rng_));
    values.insert(2, randomVector(2, rng_));
    values.insert(3, randomVector(3, rng_));
    Matrix a = Matrix::identity(3);
    a(0, 2) = 0.1;
    Matrix b(3, 2);
    b(0, 0) = 0.05;
    b(1, 1) = 0.05;
    b(2, 1) = 0.1;
    fg::DynamicsFactor factor(1, 2, 3, a, b, fg::isotropicSigmas(3, 0.2));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, VectorPrior)
{
    Values values;
    values.insert(1, randomVector(4, rng_));
    fg::VectorPriorFactor factor(1, randomVector(4, rng_),
                                 fg::isotropicSigmas(4, 0.9));
    expectJacobiansMatch(factor, values);
}

TEST_P(FactorJacobians, CustomExpressionEqu3)
{
    // The paper's custom-factor walk-through: Equ. 3/4 built by hand
    // through the public expression API.
    std::size_t n = 3;
    Values values;
    values.insert(1, randomPose(n, rng_));
    values.insert(2, randomPose(n, rng_));
    Pose z = randomPose(n, rng_);

    fg::Dfg dfg;
    PoseExpr xi = dfg.inputPose(1);
    PoseExpr xj = dfg.inputPose(2);
    PoseExpr ze = dfg.constPose(z);
    dfg.addPoseOutput(dfg.ominus(dfg.ominus(xi, xj), ze));
    fg::ExpressionFactor factor(std::move(dfg),
                                fg::isotropicSigmas(6, 1.0));
    expectJacobiansMatch(factor, values);

    // And it must agree with the closed-form Equ. 4.
    const Pose xi_v = values.pose(1);
    const Pose xj_v = values.pose(2);
    const Vector expected = xi_v.ominus(xj_v).ominus(z).asVector();
    EXPECT_LT(maxDifference(factor.error(values), expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorJacobians, ::testing::Range(0, 5));

// --- Factor plumbing --------------------------------------------------------

TEST(Factor, WhiteningScalesErrorAndJacobian)
{
    Values values;
    values.insert(1, Pose(Vector{0.0}, Vector{2.0, 0.0}));
    fg::GPSFactor raw(1, Vector{0.0, 0.0}, fg::isotropicSigmas(2, 1.0));
    fg::GPSFactor scaled(1, Vector{0.0, 0.0},
                         fg::isotropicSigmas(2, 2.0));
    EXPECT_LT(maxDifference(scaled.whitenedError(values),
                            raw.whitenedError(values) * 0.5),
              1e-12);
    EXPECT_NEAR(scaled.cost(values), 0.25 * raw.cost(values), 1e-12);
}

TEST(Factor, BadSigmasThrow)
{
    EXPECT_THROW(fg::GPSFactor(1, Vector{0.0, 0.0},
                               fg::isotropicSigmas(2, -1.0)),
                 std::invalid_argument);
    EXPECT_THROW(fg::isotropicSigmas(3, 0.0), std::invalid_argument);
}

TEST(Factor, CameraRejectsBadPixel)
{
    EXPECT_THROW(fg::CameraFactor(1, 2, Vector{1.0, 2.0, 3.0},
                                  CameraModel{}, fg::isotropicSigmas(2, 1)),
                 std::invalid_argument);
}

TEST(Factor, BlockDimensionsMatchPaperExample)
{
    // Sec. 5.1: a camera factor corresponds to a 2x6 block (pose) and
    // a 2x3 block (landmark) plus a length-2 error.
    Values values;
    Pose pose = orianna::lie::Pose::identity(3);
    values.insert(1, pose);
    values.insert(2, Vector{0.1, -0.1, 3.0});
    fg::CameraFactor factor(1, 2, Vector{0.0, 0.0},
                            CameraModel{400, 400, 0, 0},
                            fg::isotropicSigmas(2, 1.0));
    auto jacobians = factor.whitenedJacobians(values);
    EXPECT_EQ(jacobians.at(1).rows(), 2u);
    EXPECT_EQ(jacobians.at(1).cols(), 6u);
    EXPECT_EQ(jacobians.at(2).rows(), 2u);
    EXPECT_EQ(jacobians.at(2).cols(), 3u);
    EXPECT_EQ(factor.dim(), 2u);
}

} // namespace
