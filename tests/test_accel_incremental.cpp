// Incremental solving on the accelerator path (DESIGN.md §13): the
// AcceleratedSmoother against the CPU reference smoother, the
// bit-identity of device-incremental vs device-batch at a fixed
// linearization point, shape-cache amortization, the degradation
// ladder, and ProgramStore round trips of update programs.

#include <cstdio>
#include <filesystem>
#include <random>

#include <gtest/gtest.h>

#include "apps/pose_graph.hpp"
#include "fg/factors.hpp"
#include "fg/incremental.hpp"
#include "fg/optimizer.hpp"
#include "runtime/incremental.hpp"

using namespace orianna;
using apps::PoseGraphFrame;
using apps::PoseGraphScenario;

namespace {

hw::AcceleratorConfig
config()
{
    return hw::AcceleratorConfig::minimal(true);
}

/** Replay a scenario through any smoother-shaped object. */
template <typename Smoother>
void
replay(Smoother &smoother, const PoseGraphScenario &scenario,
       std::size_t frames = SIZE_MAX)
{
    const std::size_t n = std::min(frames, scenario.frames.size());
    for (std::size_t i = 0; i < n; ++i) {
        const PoseGraphFrame &frame = scenario.frames[i];
        smoother.addVariable(frame.key,
                             scenario.initial.pose(frame.key));
        for (const fg::FactorPtr &factor : frame.factors)
            smoother.addFactor(factor);
        smoother.update();
    }
}

double
maxTrajectoryDelta(const fg::Values &a, const fg::Values &b)
{
    double worst = 0.0;
    for (fg::Key key : a.keys())
        worst = std::max(
            worst, (a.pose(key).t() - b.pose(key).t()).norm());
    return worst;
}

/** Never relinearize after the first frame (fixed-point regime). */
fg::IncrementalParams
frozenParams()
{
    fg::IncrementalParams params;
    params.relinearizeInterval = 0;
    params.relinearizeThreshold = 1e18;
    return params;
}

} // namespace

// The accelerated smoother follows the CPU reference smoother within
// floating-point noise across a full nonlinear manhattan run (the
// device QR is a Givens array, the host reference is Householder, so
// cross-path agreement is tolerance-based, not bit-exact).
TEST(AccelIncremental, TracksCpuSmootherOnManhattan)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(60, /*seed=*/7);
    ASSERT_GT(scenario.loopClosureFrames(), 0u);

    fg::IncrementalSmoother cpu;
    replay(cpu, scenario);

    runtime::Engine engine(config());
    runtime::AcceleratedSmoother accel(engine);
    replay(accel, scenario);

    EXPECT_LT(maxTrajectoryDelta(cpu.estimate(), accel.estimate()),
              1e-6);
    EXPECT_GT(accel.stats().acceleratedFrames, 0u);
    EXPECT_GT(accel.stats().batchFrames, 0u);
}

// Tentpole bit-identity: with the linearization point frozen, an
// incremental device run and a single all-factors-at-once device
// batch eliminate the same rows in the same canonical order through
// the same Givens kernel — the results must agree bit for bit.
TEST(AccelIncremental, IncrementalMatchesDeviceBatchBitIdentical)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(50, /*seed=*/3);

    runtime::Engine engine(config());
    runtime::AcceleratedSmootherOptions options;
    options.params = frozenParams();

    // Incremental: one frame at a time, suffix updates on-device.
    runtime::AcceleratedSmoother incremental(engine, options);
    replay(incremental, scenario);

    // Batch: everything in one update — a single relinearize-all
    // frame on the batch reference rung, at the same linearization
    // point (the shared scenario.initial guesses).
    runtime::AcceleratedSmoother batch(engine, options);
    for (const PoseGraphFrame &frame : scenario.frames)
        batch.addVariable(frame.key,
                          scenario.initial.pose(frame.key));
    for (const PoseGraphFrame &frame : scenario.frames)
        for (const fg::FactorPtr &factor : frame.factors)
            batch.addFactor(factor);
    batch.update();

    const fg::Values a = incremental.estimate();
    const fg::Values b = batch.estimate();
    ASSERT_EQ(a.keys(), b.keys());
    for (fg::Key key : a.keys()) {
        const lie::Pose &pa = a.pose(key);
        const lie::Pose &pb = b.pose(key);
        for (std::size_t i = 0; i < pa.phi().size(); ++i)
            EXPECT_EQ(pa.phi()[i], pb.phi()[i]) << "pose " << key;
        for (std::size_t i = 0; i < pa.t().size(); ++i)
            EXPECT_EQ(pa.t()[i], pb.t()[i]) << "pose " << key;
    }
    EXPECT_GT(incremental.stats().acceleratedFrames, 0u);
}

// Two identical accelerated runs are bit-identical (deterministic
// device kernels, deterministic schedule).
TEST(AccelIncremental, AcceleratedRunsAreDeterministic)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(40, /*seed=*/11);
    runtime::Engine engine(config());

    runtime::AcceleratedSmoother first(engine);
    replay(first, scenario);
    runtime::AcceleratedSmoother second(engine);
    replay(second, scenario);

    EXPECT_EQ(maxTrajectoryDelta(first.estimate(),
                                 second.estimate()),
              0.0);
}

// Full nonlinear corpus agreement: every corpus scenario optimized
// incrementally on-device lands within 1e-6 of the batch Gauss-
// Newton solution of the same graph. A tight relinearization
// threshold plus a few factor-less polish updates (which relinearize
// on that threshold — the early-return bugfix) drive the incremental
// run to the same fixed point the batch solver converges to.
TEST(AccelIncremental, CorpusScenariosAgreeWithBatchSolve)
{
    runtime::Engine engine(config());
    const PoseGraphScenario corpus[] = {
        apps::makeManhattanWorld(60, 5),
        apps::makeSphereWorld(4, 12, 5),
        apps::makeGarageWorld(3, 12, 5),
    };
    for (const PoseGraphScenario &scenario : corpus) {
        SCOPED_TRACE(scenario.name);
        ASSERT_GT(scenario.loopClosureFrames(), 0u);

        runtime::AcceleratedSmootherOptions options;
        options.params.relinearizeThreshold = 1e-5;
        runtime::AcceleratedSmoother accel(engine, options);
        replay(accel, scenario);
        for (int polish = 0; polish < 3; ++polish)
            accel.update();

        // Batch Gauss-Newton on the flattened graph, started from
        // the same initial guesses.
        fg::GaussNewtonParams gn;
        gn.maxIterations = 20;
        fg::Values batch =
            fg::optimize(scenario.graph(), scenario.initial, gn)
                .values;

        EXPECT_LT(maxTrajectoryDelta(accel.estimate(), batch), 1e-6);
    }
}

// Steady-state shape reuse: the garage stream repeats the same two
// affected-suffix shapes (odometry, one-lap closure) frame after
// frame, so sessions — and compiles — stay far below the frame
// count. This is the whole point of shape-only fingerprints.
TEST(AccelIncremental, UpdateShapesAmortizeAcrossFrames)
{
    const PoseGraphScenario scenario =
        apps::makeGarageWorld(8, 16, /*seed=*/2);
    runtime::Engine engine(config());
    runtime::AcceleratedSmootherOptions options;
    options.params = frozenParams();
    runtime::AcceleratedSmoother accel(engine, options);
    replay(accel, scenario);

    const auto &stats = accel.stats();
    const std::uint64_t device_frames =
        stats.acceleratedFrames + stats.batchFrames;
    EXPECT_GT(stats.sessionReuses, device_frames / 2);
    EXPECT_LT(stats.sessionsOpened, device_frames / 4);
    // Compiles can only have happened on session opens (at most two
    // programs per shape: optimized + reference).
    EXPECT_LE(engine.stats().compiles, 2 * stats.sessionsOpened);
}

// Oversize suffixes take the CPU reference path instead of
// compiling a one-off giant program.
TEST(AccelIncremental, OversizeSuffixFallsBackToCpu)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(40, /*seed=*/9);
    runtime::Engine engine(config());
    runtime::AcceleratedSmootherOptions options;
    options.maxAcceleratedSuffix = 8;
    runtime::AcceleratedSmoother accel(engine, options);
    replay(accel, scenario);

    EXPECT_GT(accel.stats().cpuFrames, 0u);
    EXPECT_GT(accel.stats().acceleratedFrames, 0u);

    fg::IncrementalSmoother cpu;
    replay(cpu, scenario);
    EXPECT_LT(maxTrajectoryDelta(cpu.estimate(), accel.estimate()),
              1e-6);
}

// The degradation ladder protects incremental frames: with an armed
// injector flipping datapath bits, frames retry and fall back to the
// reference update program instead of landing poisoned deltas.
TEST(AccelIncremental, InjectedFaultsFallBackToReferenceRung)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(40, /*seed=*/13);

    runtime::EngineOptions options;
    options.faultPlan = hw::FaultPlan::parse("7@corrupt:all:0.02");
    runtime::Engine engine(config(), options);
    runtime::AcceleratedSmoother accel(engine);
    replay(accel, scenario);

    // Functional result still tracks the clean CPU run.
    fg::IncrementalSmoother cpu;
    replay(cpu, scenario);
    EXPECT_LT(maxTrajectoryDelta(cpu.estimate(), accel.estimate()),
              1e-6);
    EXPECT_GT(engine.health().faultsDetected.load(), 0u);
}

// Update programs round-trip through the persistent ProgramStore: a
// warm restart against the same directory serves previously seen
// update shapes from disk.
TEST(AccelIncremental, UpdateProgramsRoundTripThroughStore)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(40, /*seed=*/4);
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "orianna_accel_incr_store_test")
            .string();
    std::filesystem::remove_all(dir);

    runtime::EngineOptions options;
    options.storeDir = dir;
    std::uint64_t cold_compiles = 0;
    {
        runtime::Engine engine(config(), options);
        runtime::AcceleratedSmoother accel(engine);
        replay(accel, scenario);
        cold_compiles = engine.stats().compiles;
        EXPECT_GT(engine.stats().storeWrites, 0u);
    }
    {
        runtime::Engine engine(config(), options);
        runtime::AcceleratedSmoother accel(engine);
        replay(accel, scenario);
        EXPECT_EQ(engine.stats().compiles, 0u);
        EXPECT_EQ(engine.stats().storeHits, cold_compiles);
    }
    std::filesystem::remove_all(dir);
}

// Fixed-lag operation: marginalizing the leading poses preserves the
// information exactly, so a subsequent loop closure lands on the same
// estimate the CPU smoother produces.
TEST(AccelIncremental, MarginalizeThenLoopClosureTracksCpu)
{
    const PoseGraphScenario scenario =
        apps::makeManhattanWorld(60, /*seed=*/21);

    runtime::Engine engine(config());
    runtime::AcceleratedSmoother accel(engine);
    fg::IncrementalSmoother cpu;

    const std::size_t cut = 40;
    replay(accel, scenario, cut);
    replay(cpu, scenario, cut);
    accel.marginalizeLeading(10);
    cpu.marginalizeLeading(10);
    for (std::size_t i = cut; i < scenario.frames.size(); ++i) {
        const PoseGraphFrame &frame = scenario.frames[i];
        accel.addVariable(frame.key,
                          scenario.initial.pose(frame.key));
        cpu.addVariable(frame.key,
                        scenario.initial.pose(frame.key));
        for (const fg::FactorPtr &factor : frame.factors) {
            accel.addFactor(factor);
            cpu.addFactor(factor);
        }
        accel.update();
        cpu.update();
    }
    EXPECT_LT(maxTrajectoryDelta(cpu.estimate(), accel.estimate()),
              1e-6);
}

// Shape fingerprints are pure shape: two different frames with the
// same affected-suffix structure share one fingerprint, and any
// structural difference separates them.
TEST(AccelIncremental, UpdateFingerprintIsShapeOnly)
{
    comp::UpdateSpec spec;
    spec.dofs = {3, 3};
    spec.rows.push_back({3, {0}});
    spec.rows.push_back({3, {0, 1}});
    spec.steps.push_back({{0, 1}, {0, 1}, 3});
    spec.steps.push_back({{2}, {1}, 0});

    comp::UpdateSpec same = spec;
    same.name = "renamed";
    same.precision = comp::Precision::Fp32;
    EXPECT_EQ(comp::updateFingerprint(spec),
              comp::updateFingerprint(same));

    comp::UpdateSpec different = spec;
    different.steps[0].kept = 2;
    EXPECT_NE(comp::updateFingerprint(spec),
              comp::updateFingerprint(different));
}

// The committed data/g2o excerpts load, stream through
// scenarioFromG2o, and the accelerated replay agrees with a batch
// Gauss-Newton solve of the flattened graph — the full corpus round
// trip: generator -> g2o file -> reader -> frame stream -> device.
TEST(AccelIncremental, CommittedG2oCorpusReplays)
{
    const std::string dir = ORIANNA_G2O_DIR;
    const struct
    {
        const char *file;
        std::size_t spaceDim;
    } corpus[] = {{"manhattan_lite.g2o", 2},
                  {"sphere_lite.g2o", 3},
                  {"garage_lite.g2o", 3}};

    runtime::Engine engine(config());
    for (const auto &entry : corpus) {
        const fg::PoseGraphData data =
            fg::loadG2o(dir + "/" + entry.file);
        EXPECT_TRUE(data.warnings.empty()) << entry.file;
        const PoseGraphScenario scenario =
            apps::scenarioFromG2o(data, entry.file);
        ASSERT_EQ(scenario.frames.size(), 120u) << entry.file;
        ASSERT_EQ(scenario.spaceDim, entry.spaceDim) << entry.file;
        ASSERT_GT(scenario.loopClosureFrames(), 0u) << entry.file;

        runtime::AcceleratedSmootherOptions options;
        options.params.relinearizeThreshold = 1e-5;
        runtime::AcceleratedSmoother accel(engine, options);
        replay(accel, scenario);
        for (int polish = 0; polish < 3; ++polish)
            accel.update();

        fg::GaussNewtonParams gn;
        gn.maxIterations = 20;
        const auto batch =
            fg::optimize(scenario.graph(), scenario.initial, gn);
        EXPECT_LT(maxTrajectoryDelta(batch.values, accel.estimate()),
                  1e-6)
            << entry.file;
    }
}
