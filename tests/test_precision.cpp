// Mixed-precision path (DESIGN.md §12): fp32 kernels and the float
// executor track the fp64 reference within principled round-off
// bounds; precision resolution (explicit pin beats ORIANNA_PRECISION
// beats the Fp64 default); the precision-salted program cache and
// persistent store keep both datapaths of one graph coexisting with
// bit-identical warm restarts; and the fp32 degradation rung — a
// frame whose reduced mantissa overflows or diverges replays on the
// fp64 reference program, landing bit-identical to a pure-fp64
// engine.

#include <cstdlib>
#include <filesystem>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/executor.hpp"
#include "fg/factors.hpp"
#include "matrix/kernels.hpp"
#include "runtime/engine.hpp"
#include "runtime/program_store.hpp"
#include "test_json.hpp"

namespace {

namespace fs = std::filesystem;

using namespace orianna;
using orianna::test::parseJson;

constexpr double kEps32 = 1.19209290e-7; // FLT_EPSILON.

/** A pose chain whose Gauss-Newton deltas are O(0.1). */
fg::FactorGraph
chainGraph(fg::Values &initial)
{
    std::vector<lie::Pose> truth;
    for (int i = 0; i < 5; ++i)
        truth.emplace_back(mat::Vector{0.1 * i, 0.02 * i, 0.05 * i},
                           mat::Vector{0.4 * i, 0.04 * i, 0.0});
    fg::FactorGraph graph;
    graph.emplace<fg::PriorFactor>(1, truth[0],
                                   fg::isotropicSigmas(6, 0.01));
    for (std::size_t i = 1; i < truth.size(); ++i)
        graph.emplace<fg::IMUFactor>(i, i + 1,
                                     truth[i].ominus(truth[i - 1]),
                                     fg::isotropicSigmas(6, 0.05));
    initial = fg::Values();
    for (std::size_t i = 0; i < truth.size(); ++i)
        initial.insert(i + 1,
                       truth[i].retract(mat::Vector{0.05, -0.05, 0.05,
                                                    -0.05, 0.05,
                                                    -0.05}));
    return graph;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        testing::TempDir() + "orianna_precision_" + name;
    fs::remove_all(dir);
    return dir;
}

/** Exact (bitwise) equality of two value sets. */
void
expectIdenticalValues(const fg::Values &a, const fg::Values &b)
{
    ASSERT_EQ(a.keys().size(), b.keys().size());
    for (fg::Key key : a.keys()) {
        if (a.isPose(key)) {
            EXPECT_EQ(mat::maxDifference(a.pose(key).phi(),
                                         b.pose(key).phi()),
                      0.0)
                << key;
            EXPECT_EQ(
                mat::maxDifference(a.pose(key).t(), b.pose(key).t()),
                0.0)
                << key;
        } else {
            EXPECT_EQ(mat::maxDifference(a.vector(key), b.vector(key)),
                      0.0)
                << key;
        }
    }
}

/** RAII guard restoring ORIANNA_PRECISION on scope exit. */
class ScopedPrecisionEnv
{
  public:
    explicit ScopedPrecisionEnv(const char *value)
    {
        const char *current = std::getenv("ORIANNA_PRECISION");
        had_ = current != nullptr;
        if (had_)
            saved_ = current;
        if (value != nullptr)
            setenv("ORIANNA_PRECISION", value, 1);
        else
            unsetenv("ORIANNA_PRECISION");
    }

    ~ScopedPrecisionEnv()
    {
        if (had_)
            setenv("ORIANNA_PRECISION", saved_.c_str(), 1);
        else
            unsetenv("ORIANNA_PRECISION");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

// --- Kernel-layer parity --------------------------------------------

TEST(Fp32Kernels, GemmTracksFp64WithinRoundoff)
{
    // The fp32 table (whatever tier is active — AVX2 reassociates
    // into 8-wide accumulators) must agree with an exact double
    // triple-loop within a forward-error bound: narrowing both
    // operands plus a k-term accumulation each contribute O(eps32)
    // relative to the magnitude sum Σ|a||b|.
    std::mt19937 rng(20260807);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const struct
    {
        std::size_t m, k, n;
    } shapes[] = {{3, 7, 5}, {8, 16, 8}, {13, 64, 29}, {32, 128, 32}};
    for (const auto &shape : shapes) {
        std::vector<double> a(shape.m * shape.k);
        std::vector<double> b(shape.k * shape.n);
        for (double &x : a)
            x = dist(rng);
        for (double &x : b)
            x = dist(rng);
        std::vector<float> a32(a.begin(), a.end());
        std::vector<float> b32(b.begin(), b.end());
        std::vector<float> c32(shape.m * shape.n, 0.0f);
        mat::kernels::gemm<float>(a32.data(), b32.data(), c32.data(),
                                  shape.m, shape.k, shape.n);
        for (std::size_t i = 0; i < shape.m; ++i)
            for (std::size_t j = 0; j < shape.n; ++j) {
                double exact = 0.0;
                double magnitude = 0.0;
                for (std::size_t p = 0; p < shape.k; ++p) {
                    const double term =
                        a[i * shape.k + p] * b[p * shape.n + j];
                    exact += term;
                    magnitude += std::abs(term);
                }
                const double bound =
                    4.0 * (static_cast<double>(shape.k) + 4.0) *
                    kEps32 * magnitude;
                EXPECT_NEAR(c32[i * shape.n + j], exact, bound)
                    << shape.m << "x" << shape.k << "x" << shape.n
                    << " at (" << i << "," << j << ")";
            }
    }
}

TEST(Fp32Kernels, DotTracksFp64WithinRoundoff)
{
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (const std::size_t n : {16u, 64u, 257u, 1024u}) {
        std::vector<double> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = dist(rng);
            b[i] = dist(rng);
        }
        std::vector<float> a32(a.begin(), a.end());
        std::vector<float> b32(b.begin(), b.end());
        double exact = 0.0;
        double magnitude = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            exact += a[i] * b[i];
            magnitude += std::abs(a[i] * b[i]);
        }
        const double got = static_cast<double>(
            mat::kernels::dot<float>(a32.data(), b32.data(), n));
        EXPECT_NEAR(got, exact,
                    4.0 * (static_cast<double>(n) + 4.0) * kEps32 *
                        magnitude)
            << "n=" << n;
    }
}

// --- Executor-layer parity ------------------------------------------

TEST(Fp32Executor, DeltasTrackFp64WithinTolerance)
{
    // Same instruction stream, float slot arena: the per-frame deltas
    // must agree with the double interpreter to fp32 round-off scale
    // (the solve path is QR over well-conditioned chains; empirically
    // deltas land within ~1e-5, so 1e-4 leaves slack without ever
    // accepting an fp64-sized error).
    fg::Values initial;
    const fg::FactorGraph graph = chainGraph(initial);
    comp::Program program = comp::compileGraph(graph, initial);

    comp::Executor exact(program);
    const auto deltas64 = exact.run(initial);

    program.precision = comp::Precision::Fp32;
    comp::Executor32 narrow(program);
    const auto deltas32 = narrow.run(initial);

    ASSERT_EQ(deltas64.size(), deltas32.size());
    ASSERT_FALSE(deltas64.empty());
    for (const auto &[key, delta] : deltas64) {
        const auto it = deltas32.find(key);
        ASSERT_NE(it, deltas32.end()) << key;
        double scale = 1.0;
        for (std::size_t i = 0; i < delta.size(); ++i)
            scale = std::max(scale, std::abs(delta[i]));
        EXPECT_LE(mat::maxDifference(delta, it->second),
                  1e-4 * scale)
            << key;
    }
}

// --- Precision resolution -------------------------------------------

TEST(PrecisionResolve, EnvSelectsAndExplicitPinWins)
{
    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    {
        ScopedPrecisionEnv env(nullptr);
        runtime::Engine engine(config);
        EXPECT_EQ(engine.precision(), comp::Precision::Fp64);
    }
    {
        ScopedPrecisionEnv env("fp32");
        runtime::Engine engine(config);
        EXPECT_EQ(engine.precision(), comp::Precision::Fp32);

        // An explicit option pins the datapath regardless of env.
        runtime::EngineOptions pinned;
        pinned.precision = comp::Precision::Fp64;
        runtime::Engine fixed(config, pinned);
        EXPECT_EQ(fixed.precision(), comp::Precision::Fp64);
    }
    {
        // A malformed value falls back to the Fp64 default.
        ScopedPrecisionEnv env("fp17");
        runtime::Engine engine(config);
        EXPECT_EQ(engine.precision(), comp::Precision::Fp64);
    }
}

TEST(PrecisionResolve, HealthReportsTheDatapath)
{
    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp32;
    runtime::Engine engine(hw::AcceleratorConfig::minimal(true),
                           options);
    const auto json = parseJson(engine.healthJson());
    EXPECT_EQ(json->at("precision").asString(), "fp32");
}

// --- Cache/store key salting ----------------------------------------

TEST(PrecisionStore, BothPrecisionsCoexistWithBitIdenticalRestarts)
{
    fg::Values initial;
    const fg::FactorGraph graph = chainGraph(initial);
    const std::string dir = freshDir("coexist");
    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);

    auto optionsFor = [&](comp::Precision precision) {
        runtime::EngineOptions options;
        options.storeDir = dir;
        options.precision = precision;
        return options;
    };

    // Cold fp64: one compile, one published artifact.
    fg::Values v64;
    {
        runtime::Engine engine(config,
                               optionsFor(comp::Precision::Fp64));
        runtime::Session session = engine.session(graph, initial);
        session.iterate(2);
        v64 = session.values();
        EXPECT_EQ(engine.stats().compiles, 1u);
        EXPECT_EQ(engine.stats().storeWrites, 1u);
    }

    // Cold fp32 against the same directory: the salted key misses the
    // fp64 artifact, so the optimized fp32 program AND its fp64
    // reference fallback both compile and publish.
    fg::Values v32;
    {
        runtime::Engine engine(config,
                               optionsFor(comp::Precision::Fp32));
        runtime::Session session = engine.session(graph, initial);
        EXPECT_TRUE(session.hasFallback());
        session.iterate(2);
        v32 = session.values();
        EXPECT_EQ(engine.stats().compiles, 2u);
        EXPECT_EQ(engine.stats().storeHits, 0u);
        EXPECT_EQ(engine.stats().storeWrites, 2u);

        // Both precision entries of the one graph exist on disk under
        // distinct (salted) names.
        const std::uint64_t fingerprint =
            runtime::graphFingerprint(graph, initial);
        const runtime::ProgramStore *store = engine.store();
        ASSERT_NE(store, nullptr);
        EXPECT_TRUE(fs::exists(store->entryPath(fingerprint)));
        EXPECT_TRUE(fs::exists(store->entryPath(
            fingerprint ^ runtime::Engine::kFp32Salt)));
    }

    // Optimized fp64, optimized fp32, shared fp64 reference.
    std::size_t entries = 0;
    for (const auto &item : fs::directory_iterator(dir))
        entries += item.path().extension() == ".oprog" ? 1 : 0;
    EXPECT_EQ(entries, 3u);

    // Warm restarts: zero compiles per precision, values
    // bit-identical to the cold runs.
    {
        runtime::Engine engine(config,
                               optionsFor(comp::Precision::Fp64));
        runtime::Session session = engine.session(graph, initial);
        session.iterate(2);
        EXPECT_EQ(engine.stats().compiles, 0u);
        EXPECT_EQ(engine.stats().storeHits, 1u);
        expectIdenticalValues(v64, session.values());
    }
    {
        runtime::Engine engine(config,
                               optionsFor(comp::Precision::Fp32));
        runtime::Session session = engine.session(graph, initial);
        session.iterate(2);
        EXPECT_EQ(engine.stats().compiles, 0u);
        EXPECT_EQ(engine.stats().storeHits, 2u);
        expectIdenticalValues(v32, session.values());
    }
}

// --- The fp32 degradation rung --------------------------------------

TEST(Fp32Fallback, OverflowingFrameLandsOnFp64Reference)
{
    // A residual of ~1e30 whitened by sigma 1e-10 streams 1e40
    // through the datapath: comfortable in double, infinity in float.
    // The fp32 frame's non-finite deltas climb the ladder and replay
    // on the fp64 reference program, whose update the pass-equivalence
    // contract keeps bit-identical to a pure-fp64 engine's.
    fg::Values initial;
    fg::FactorGraph graph = chainGraph(initial);
    initial.insert(100, mat::Vector{1e30, -1e30, 1e30});
    graph.emplace<fg::VectorPriorFactor>(
        100, mat::Vector{0.0, 0.0, 0.0},
        fg::isotropicSigmas(3, 1e-10));

    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    runtime::Engine clean(config, fp64);
    runtime::Session truth = clean.session(graph, initial);
    truth.step();

    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp32;
    runtime::Engine engine(config, options);
    runtime::Session session = engine.session(graph, initial);
    ASSERT_TRUE(session.hasFallback());
    session.step();

    // No injector is armed, so no retries — the frame detects the
    // overflow once and goes straight to the reference rung, whose
    // fp64 update lands bit-identical to the clean engine's. (The
    // fallback also heals the state: the huge residual is gone, so a
    // second frame would run natively in fp32 again.)
    EXPECT_EQ(session.fallbacks(), 1u);
    EXPECT_EQ(session.retries(), 0u);
    EXPECT_EQ(session.faultsDetected(), 1u);
    EXPECT_TRUE(session.lastFrameDegraded());
    expectIdenticalValues(truth.values(), session.values());

    const auto json = parseJson(engine.healthJson());
    EXPECT_EQ(json->at("status").asString(), "degraded");
    EXPECT_EQ(json->at("precision").asString(), "fp32");
    EXPECT_EQ(json->at("fallbacks").asNumber(), 1.0);
    EXPECT_EQ(json->at("failures").asNumber(), 0.0);
}

TEST(Fp32Fallback, DivergenceLimitTripsTheLadder)
{
    // deltaAbsLimit far below any real update: every fp32 frame is
    // declared diverging on the primary rung, while the fp64 fallback
    // (trusted ground truth, limit waived) still lands the update —
    // so the stream completes bit-identical to a pure-fp64 engine.
    fg::Values initial;
    const fg::FactorGraph graph = chainGraph(initial);

    const hw::AcceleratorConfig config =
        hw::AcceleratorConfig::minimal(true);
    runtime::EngineOptions fp64;
    fp64.precision = comp::Precision::Fp64;
    runtime::Engine clean(config, fp64);
    runtime::Session truth = clean.session(graph, initial);
    truth.iterate(3);

    runtime::EngineOptions options;
    options.precision = comp::Precision::Fp32;
    options.degradation.deltaAbsLimit = 1e-12;
    runtime::Engine engine(config, options);
    runtime::Session session = engine.session(graph, initial);
    session.iterate(3);

    EXPECT_EQ(session.frames(), 3u);
    EXPECT_EQ(session.fallbacks(), 3u);
    EXPECT_TRUE(session.lastFrameDegraded());
    expectIdenticalValues(truth.values(), session.values());
    EXPECT_EQ(engine.health().failures.load(), 0u);
}

} // namespace
